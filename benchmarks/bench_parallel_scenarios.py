"""PARALLEL — process-pool grid dispatch vs. the serial executor.

Runs the ``design-space-grid`` scenario (9 independent (N, C) TDC design
points) twice through ``ExperimentRunner``: once on the
:class:`~repro.scenarios.executors.SerialExecutor` and once on a
:class:`~repro.scenarios.executors.ProcessExecutor` with ``WORKERS``
processes, and records points/sec for both in ``BENCH_parallel.json`` at the
repository root (the ``BENCH_fastpath.json`` pattern).

Because every point's seed is derived before dispatch, the two runs are
**bit-identical** — this benchmark asserts ``to_mapping()`` equality on top
of timing, so the perf record can never drift away from the correctness
contract.  The speedup bar (>=2x points/sec at 4 workers) only applies on
machines with >=4 usable cores; the record always captures ``cpu_count`` so
longitudinal readers can interpret single-core CI numbers.

Run directly with ``python benchmarks/bench_parallel_scenarios.py`` or
through the benchmark harness.
"""

import json
import time
from pathlib import Path

from repro.analysis.report import ReportTable, TextReport
from repro.scenarios import ExperimentRunner, get_scenario
from repro.scenarios.executors import usable_cpu_count

SCENARIO = "design-space-grid"
# Heavy enough per point that pool startup/IPC is noise next to the physics:
# 9 points at ~150 ms each. With 4 workers the 9 points quantise into 3
# waves, so the ideal speedup is 3x and the >=2x bar leaves real margin.
BITS_PER_POINT = 400_000
WORKERS = 4
SEED = 0
RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def run_executor(executor, workers=None):
    scenario = get_scenario(SCENARIO).with_budget(BITS_PER_POINT)
    runner = ExperimentRunner(scenario, seed=SEED, executor=executor, workers=workers)
    start = time.perf_counter()
    report = runner.run()
    return report, time.perf_counter() - start


def run_comparison():
    serial_report, serial_elapsed = run_executor("serial")
    process_report, process_elapsed = run_executor("process", workers=WORKERS)
    return serial_report, serial_elapsed, process_report, process_elapsed


def evaluate(serial_report, serial_elapsed, process_report, process_elapsed):
    points = len(serial_report.points)
    serial_rate = points / serial_elapsed
    process_rate = points / process_elapsed
    speedup = process_rate / serial_rate
    # Usable cores (scheduler affinity/cpusets), not installed ones; CFS
    # bandwidth quotas remain invisible, so the recorded count is still an
    # upper bound on what a throttled container can use.
    cpu_count = usable_cpu_count()

    record = {
        "workload": {
            "scenario": SCENARIO,
            "points": points,
            "bits_per_point": BITS_PER_POINT,
            "seed": SEED,
            "workers": WORKERS,
            "cpu_count": cpu_count,
        },
        "serial": {"seconds": serial_elapsed, "points_per_sec": serial_rate},
        "process": {"seconds": process_elapsed, "points_per_sec": process_rate},
        "speedup": speedup,
        "reports_bit_identical": serial_report.to_mapping() == process_report.to_mapping(),
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")

    report = TextReport(
        "PARALLEL",
        "Process-pool grid dispatch vs. serial executor on the TDC design-space grid",
        paper_claim="grid points are independent seed-derived units of work; "
                    "dispatching them side by side changes wall clock, never content",
    )
    table = ReportTable(columns=["executor", "wall time", "points/sec"])
    table.add_row("serial", f"{serial_elapsed:.3f} s", f"{serial_rate:.2f}")
    table.add_row(f"process (w={WORKERS})", f"{process_elapsed:.3f} s", f"{process_rate:.2f}")
    report.add_table(table, caption=f"{points} points x {BITS_PER_POINT:,} bits, {cpu_count} CPU(s)")
    report.add_comparison(
        "parallel speedup", f">=2x points/sec at {WORKERS} workers (needs >=4 cores)",
        f"{speedup:.2f}x on {cpu_count} core(s)",
    )
    print()
    print(report.render())
    print(f"perf record written to {RECORD_PATH}")
    return record


def test_parallel_dispatch(benchmark):
    serial_report, serial_elapsed, process_report, process_elapsed = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )
    record = evaluate(serial_report, serial_elapsed, process_report, process_elapsed)

    # The correctness half of the contract holds everywhere, always.
    assert record["reports_bit_identical"]
    # The perf half needs real cores to mean anything.
    if record["workload"]["cpu_count"] >= 4:
        assert record["speedup"] >= 2.0


if __name__ == "__main__":
    evaluate(*run_comparison())
