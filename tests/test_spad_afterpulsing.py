"""Tests for repro.spad.afterpulsing."""

import pytest

from repro.analysis.units import NS
from repro.simulation.randomness import RandomSource
from repro.spad.afterpulsing import AfterpulsingModel


class TestProbabilities:
    def test_survival_decays(self):
        model = AfterpulsingModel(probability=0.05, time_constant=30 * NS)
        assert model.survival_after(0.0) == pytest.approx(1.0)
        assert model.survival_after(30 * NS) == pytest.approx(0.3679, rel=1e-3)
        assert model.survival_after(300 * NS) < 1e-4

    def test_longer_dead_time_suppresses_afterpulses(self):
        """The paper's reason for matching the range to the SPAD dead time."""
        model = AfterpulsingModel(probability=0.05, time_constant=30 * NS)
        short = model.effective_probability(10 * NS)
        long = model.effective_probability(100 * NS)
        assert long < short < model.probability

    def test_probability_in_window_is_a_difference_of_survivals(self):
        model = AfterpulsingModel(probability=0.1, time_constant=30 * NS)
        p = model.probability_in_window(dead_time=30 * NS, window=30 * NS)
        expected = 0.1 * (model.survival_after(30 * NS) - model.survival_after(60 * NS))
        assert p == pytest.approx(expected)

    def test_window_zero_gives_zero(self):
        model = AfterpulsingModel()
        assert model.probability_in_window(10 * NS, 0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AfterpulsingModel(probability=1.5)
        with pytest.raises(ValueError):
            AfterpulsingModel(time_constant=0.0)
        with pytest.raises(ValueError):
            AfterpulsingModel().survival_after(-1.0)
        with pytest.raises(ValueError):
            AfterpulsingModel().probability_in_window(-1.0, 1.0)


class TestSampling:
    def test_release_always_after_dead_time(self):
        model = AfterpulsingModel(probability=1.0, time_constant=30 * NS)
        source = RandomSource(0)
        for _ in range(200):
            delay = model.sample_release_delay(source, dead_time=20 * NS)
            assert delay is None or delay > 20 * NS

    def test_zero_probability_never_releases(self):
        model = AfterpulsingModel(probability=0.0)
        source = RandomSource(0)
        assert all(model.sample_release_delay(source) is None for _ in range(50))

    def test_observed_rate_matches_effective_probability(self):
        model = AfterpulsingModel(probability=0.5, time_constant=30 * NS)
        source = RandomSource(1)
        dead_time = 30 * NS
        hits = sum(
            1 for _ in range(4000) if model.sample_release_delay(source, dead_time) is not None
        )
        assert hits / 4000 == pytest.approx(model.effective_probability(dead_time), rel=0.15)
