"""Declarative scenario/experiment layer — how the package is driven.

The paper's figures are *experiments*: sweeps of error rate and throughput
over operating points.  This subsystem makes them first-class:

* :mod:`repro.scenarios.scenario` — the frozen, JSON-round-trippable
  :class:`Scenario` value object (link overrides, sweep axes, metrics, trial
  budget, backend, seed policy).
* :mod:`repro.scenarios.metrics` — the registry of named figures of merit
  evaluated per grid point.
* :mod:`repro.scenarios.library` — named paper scenarios
  (``ber-vs-photons``, ``ber-vs-range``, ``design-space-grid``,
  ``multi-chip-bus``, ``spad-array-imager``, ``crosstalk-vs-pitch``,
  ``ppm-order-sweep``).
* :mod:`repro.scenarios.runner` — :class:`ExperimentRunner`, which compiles a
  scenario onto the chunked batch Monte-Carlo machinery through the link
  backend registry and returns a structured :class:`ExperimentReport`.
* :mod:`repro.scenarios.smoke` — tiny-budget execution of the whole library.

Quickstart
----------

>>> from repro.scenarios import ExperimentRunner, get_scenario
>>> scenario = get_scenario("ber-vs-photons").with_budget(512)
>>> report = ExperimentRunner(scenario, seed=1).run()
>>> len(report.points)
6
"""

from repro.scenarios.metrics import (
    PointOutcome,
    available_metrics,
    register_metric,
    resolve_metric,
)
from repro.scenarios.scenario import SPECIAL_PARAMETERS, Scenario
from repro.scenarios.library import (
    get_scenario,
    named_scenarios,
    register_scenario,
)
from repro.scenarios.runner import (
    ExperimentPoint,
    ExperimentReport,
    ExperimentRunner,
    run_scenario,
)
from repro.scenarios.smoke import SmokeFailure, run_smoke

__all__ = [
    "Scenario",
    "SPECIAL_PARAMETERS",
    "PointOutcome",
    "register_metric",
    "resolve_metric",
    "available_metrics",
    "register_scenario",
    "named_scenarios",
    "get_scenario",
    "ExperimentPoint",
    "ExperimentReport",
    "ExperimentRunner",
    "run_scenario",
    "SmokeFailure",
    "run_smoke",
]
