"""Tests for repro.simulation.events."""

import pytest

from repro.simulation.events import Event, EventQueue


class TestEventOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(3.0, kind="c")
        queue.push(1.0, kind="a")
        queue.push(2.0, kind="b")
        assert [queue.pop().kind for _ in range(3)] == ["a", "b", "c"]

    def test_ties_broken_by_priority_then_insertion(self):
        queue = EventQueue()
        queue.push(1.0, kind="late", priority=1)
        queue.push(1.0, kind="early", priority=0)
        queue.push(1.0, kind="later", priority=1)
        assert queue.pop().kind == "early"
        assert queue.pop().kind == "late"
        assert queue.pop().kind == "later"

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.push(-1.0)


class TestQueueOperations:
    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        queue.push(1.0)
        assert queue
        assert len(queue) == 1

    def test_peek_does_not_remove(self):
        queue = EventQueue()
        queue.push(1.0, kind="x")
        assert queue.peek().kind == "x"
        assert len(queue) == 1

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek() is None

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_cancellation(self):
        queue = EventQueue()
        keep = queue.push(1.0, kind="keep")
        cancel = queue.push(0.5, kind="cancel")
        queue.cancel(cancel)
        assert len(queue) == 1
        assert queue.pop().kind == "keep"

    def test_cancel_after_peek_cleanup(self):
        queue = EventQueue()
        cancelled = queue.push(0.5, kind="cancel")
        queue.push(1.0, kind="keep")
        queue.cancel(cancelled)
        assert queue.peek().kind == "keep"

    def test_drain_consumes_everything(self):
        queue = EventQueue()
        for t in (3.0, 1.0, 2.0):
            queue.push(t)
        times = [event.time for event in queue.drain()]
        assert times == [1.0, 2.0, 3.0]
        assert not queue

    def test_payload_not_compared(self):
        queue = EventQueue()
        queue.push(1.0, payload={"unorderable": object()})
        queue.push(1.0, payload={"other": object()})
        assert len(queue) == 2
        queue.pop()
        queue.pop()
