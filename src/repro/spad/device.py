"""Composite SPAD device model.

:class:`SpadDevice` combines the photon detection probability, dead-time
(quenching), dark-count, afterpulsing and jitter sub-models into a stochastic
detector with two interfaces:

* a *per-window* interface (:meth:`detect_in_window`) used by the PPM link
  simulator: given the arrival time of the (attenuated) optical pulse within
  one measurement window, return which detection — signal photon, dark count
  or afterpulse — the SPAD actually reports first, if any; and
* a *continuous* interface (:meth:`first_detection`) used by the event-driven
  simulation.

The device keeps the time of its last avalanche so that dead time and
afterpulsing carry over from one window to the next, exactly the coupling that
forces the paper to match the detection cycle to the TDC range.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from math import inf, isinf, nan
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.units import NM, NS, UM
from repro.kernels import get_kernel
from repro.simulation.randomness import RandomSource
from repro.spad.afterpulsing import AfterpulsingModel
from repro.spad.dark_counts import DarkCountModel
from repro.spad.jitter import JitterModel
from repro.spad.pdp import PdpCurve, default_cmos_pdp
from repro.spad.quenching import QuenchingCircuit


class DetectionOrigin(enum.Enum):
    """What caused a reported detection."""

    PHOTON = "photon"
    DARK_COUNT = "dark_count"
    AFTERPULSE = "afterpulse"
    #: A photon from a *neighbouring* channel (optical crosstalk or the
    #: scattered-light floor).  Only multichannel detection passes produce it;
    #: a single isolated device never does.
    CROSSTALK = "crosstalk"


#: Integer origin codes used by the batch interfaces
#: (:meth:`SpadDevice.detect_in_windows` and
#: :func:`repro.spad.array.detect_in_windows_multichannel`): ``-1`` means no
#: detection in the window.
ORIGIN_CODE_MISSED = -1
ORIGIN_BY_CODE = {
    0: DetectionOrigin.PHOTON,
    1: DetectionOrigin.DARK_COUNT,
    2: DetectionOrigin.AFTERPULSE,
    3: DetectionOrigin.CROSSTALK,
}
CODE_BY_ORIGIN = {origin: code for code, origin in ORIGIN_BY_CODE.items()}


@dataclass(frozen=True)
class ImportanceSettings:
    """Proposal floors for importance-sampled window detection.

    Rare-event BER simulation biases the three *error-producing* draw
    families so the rare outcomes happen often enough to measure, and
    compensates with per-window likelihood weights:

    * photon-miss probability is floored at ``min_miss_probability``
      (a missed pulse is the dominant error at high photon budgets);
    * the expected dark counts per window are floored at
      ``min_dark_expectation``;
    * the afterpulse trap-fill probability is floored at
      ``min_trap_probability``.

    Proposals only ever *raise* the natural rare-event probabilities —
    whenever a floor does not bind, the proposal equals the natural
    distribution and the likelihood weight is exactly 1.
    """

    min_miss_probability: float = 0.02
    min_dark_expectation: float = 0.05
    min_trap_probability: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 < self.min_miss_probability < 1.0:
            raise ValueError("min_miss_probability must be within (0, 1)")
        if self.min_dark_expectation < 0.0:
            raise ValueError("min_dark_expectation must be non-negative")
        if not 0.0 <= self.min_trap_probability < 1.0:
            raise ValueError("min_trap_probability must be within [0, 1)")


@dataclass(frozen=True)
class DetectionEvent:
    """A single reported SPAD detection."""

    time: float
    origin: DetectionOrigin


@dataclass(frozen=True)
class SpadConfig:
    """Static configuration of a SPAD receiver pixel.

    Attributes
    ----------
    active_diameter:
        Diameter of the active area [m] (ref [5] devices are ~7-10 um).
    wavelength:
        Operating wavelength of the link [m].
    excess_bias:
        Operating excess bias [V].
    temperature:
        Operating temperature [degC].
    fill_factor:
        Fraction of the pixel footprint that is photosensitive.
    """

    active_diameter: float = 8.0 * UM
    wavelength: float = 650.0 * NM
    excess_bias: float = 3.3
    temperature: float = 20.0
    fill_factor: float = 0.6

    def __post_init__(self) -> None:
        if self.active_diameter <= 0:
            raise ValueError("active_diameter must be positive")
        if self.wavelength <= 0:
            raise ValueError("wavelength must be positive")
        if self.excess_bias < 0:
            raise ValueError("excess_bias must be non-negative")
        if not 0 < self.fill_factor <= 1:
            raise ValueError("fill_factor must be within (0, 1]")

    @property
    def active_area(self) -> float:
        """Photosensitive area [m^2]."""
        return np.pi * (self.active_diameter / 2.0) ** 2


class SpadDevice:
    """Stochastic single-photon avalanche diode."""

    def __init__(
        self,
        config: SpadConfig = SpadConfig(),
        pdp_curve: Optional[PdpCurve] = None,
        quenching: Optional[QuenchingCircuit] = None,
        dark_counts: Optional[DarkCountModel] = None,
        afterpulsing: Optional[AfterpulsingModel] = None,
        jitter: Optional[JitterModel] = None,
        random_source: Optional[RandomSource] = None,
    ) -> None:
        self.config = config
        self.pdp_curve = pdp_curve if pdp_curve is not None else default_cmos_pdp()
        self.quenching = quenching if quenching is not None else QuenchingCircuit()
        self.dark_counts = dark_counts if dark_counts is not None else DarkCountModel()
        self.afterpulsing = afterpulsing if afterpulsing is not None else AfterpulsingModel()
        self.jitter = jitter if jitter is not None else JitterModel()
        self._random = random_source if random_source is not None else RandomSource(0)
        self._last_fire_time: Optional[float] = None
        self._pending_afterpulse: Optional[float] = None
        self._rearmed_at: Optional[float] = None

    # -- static characteristics ------------------------------------------------
    @property
    def detection_probability(self) -> float:
        """PDP at the configured wavelength and excess bias."""
        return self.pdp_curve.pdp(self.config.wavelength, self.config.excess_bias)

    @property
    def dead_time(self) -> float:
        """Programmed dead time [s]."""
        return self.quenching.dead_time

    @property
    def dark_count_rate(self) -> float:
        """DCR at the configured operating point [counts/s]."""
        return self.dark_counts.rate(self.config.temperature, self.config.excess_bias)

    def detection_probability_for_photons(self, mean_photons: float) -> float:
        """Probability of detecting a pulse carrying ``mean_photons`` on the active area.

        Photon statistics are Poissonian, so the detection probability of the
        pulse is ``1 - exp(-PDP * mean_photons)``.
        """
        if mean_photons < 0:
            raise ValueError("mean_photons must be non-negative")
        return float(1.0 - np.exp(-self.detection_probability * mean_photons))

    # -- state handling ----------------------------------------------------------
    def reset(self) -> None:
        """Forget any previous avalanche (device armed and trap-free)."""
        self._last_fire_time = None
        self._pending_afterpulse = None
        self._rearmed_at = None

    def is_ready(self, time: float) -> bool:
        """True when the device can fire at absolute time ``time``.

        The device is ready once the programmed dead time has elapsed, or — in
        gated operation — once it has been explicitly re-armed via
        :meth:`rearm` after the physical quench/recharge time.
        """
        if self._last_fire_time is None:
            return True
        if (
            self._rearmed_at is not None
            and self._rearmed_at > self._last_fire_time
            and time >= self._rearmed_at
        ):
            return True
        return self.quenching.is_ready(time - self._last_fire_time)

    def rearm(self, time: float) -> bool:
        """Force a gated re-arm at ``time`` (e.g. at a measurement-window start).

        Succeeds only when the physical quench/recharge time has elapsed since
        the last avalanche; returns whether the device is armed afterwards.
        Gated re-arming is how the receiver matches the SPAD detection cycle
        to the PPM range as the paper assumes (``DC(N, C)`` = the TDC range)
        even when the programmed free-running dead time is longer than one
        symbol.
        """
        if self._last_fire_time is None:
            return True
        if time < self._last_fire_time:
            raise ValueError("cannot re-arm before the last avalanche")
        if self.quenching.can_rearm(time - self._last_fire_time):
            self._rearmed_at = time
            return True
        return self.is_ready(time)

    def _register_fire(self, time: float) -> None:
        self._last_fire_time = time
        self._rearmed_at = None
        # Sample the trap release over the full distribution; whether the
        # release actually re-triggers the device depends on it being armed at
        # that instant (dead time or gated hold), which detect_in_window checks.
        if self._random.bernoulli(self.afterpulsing.probability):
            release = self._random.exponential(1.0 / self.afterpulsing.time_constant)
            self._pending_afterpulse = time + release
        else:
            self._pending_afterpulse = None

    # -- window-based detection ---------------------------------------------------
    def detect_in_window(
        self,
        window_start: float,
        window_duration: float,
        photon_time: Optional[float] = None,
        mean_photons: float = 1.0,
    ) -> Optional[DetectionEvent]:
        """First detection reported inside a measurement window.

        Parameters
        ----------
        window_start:
            Absolute start time of the window [s].
        window_duration:
            Window length [s].
        photon_time:
            Absolute arrival time of the optical pulse, or ``None`` when no
            pulse is sent in this window.
        mean_photons:
            Mean number of photons of the pulse reaching the active area.

        Returns the earliest :class:`DetectionEvent`, or ``None``.  The
        device state (dead time, pending afterpulse) is updated.
        """
        if window_duration <= 0:
            raise ValueError("window_duration must be positive")
        candidates: List[DetectionEvent] = []

        # Signal photon.
        if photon_time is not None:
            if photon_time < window_start or photon_time >= window_start + window_duration:
                raise ValueError("photon_time must lie inside the window")
            if self._random.bernoulli(self.detection_probability_for_photons(mean_photons)):
                jittered = photon_time + self.jitter.sample(self._random)
                jittered = max(window_start, jittered)
                if jittered < window_start + window_duration:
                    candidates.append(DetectionEvent(jittered, DetectionOrigin.PHOTON))

        # Dark counts.
        dark_times = self.dark_counts.sample_arrival_times(
            window_duration,
            self._random,
            temperature=self.config.temperature,
            excess_bias=self.config.excess_bias,
        )
        for offset in dark_times:
            candidates.append(DetectionEvent(window_start + float(offset), DetectionOrigin.DARK_COUNT))

        # Afterpulse pending from a previous avalanche.
        pending = self._pending_afterpulse
        if pending is not None and window_start <= pending < window_start + window_duration:
            candidates.append(DetectionEvent(pending, DetectionOrigin.AFTERPULSE))

        # Earliest candidate for which the device is armed wins.
        winner: Optional[DetectionEvent] = None
        for event in sorted(candidates, key=lambda item: item.time):
            if self.is_ready(event.time):
                winner = event
                break
        # A trap release whose time falls inside this window is consumed either
        # way: it fired if the device was armed, or was absorbed if it was not.
        if pending is not None and pending < window_start + window_duration:
            self._pending_afterpulse = None
        if winner is not None:
            self._register_fire(winner.time)
        return winner

    # -- batch window-based detection ----------------------------------------------
    def detect_in_windows(
        self,
        window_duration: float,
        photon_offsets: np.ndarray,
        mean_photons: float = 1.0,
        start_time: float = 0.0,
        importance: Optional[ImportanceSettings] = None,
        kernel: Optional[str] = None,
    ) -> Tuple[np.ndarray, ...]:
        """Batch analogue of :meth:`detect_in_window` over consecutive windows.

        Simulates one measurement window per entry of ``photon_offsets``
        (arrival time of the optical pulse *relative to its window start*;
        ``NaN`` marks a window with no pulse), with window ``i`` spanning
        ``[start_time + i*T, start_time + (i+1)*T)``.  As in the scalar path,
        the receiver attempts a gated re-arm at every window start.

        All randomness — photon detection, jitter, dark-count arrivals and
        afterpulse trap releases — is pre-drawn as arrays; the only remaining
        per-window work is the *sequential-dependency scan* that cannot be
        vectorised: the dead-time/re-arm state and the pending afterpulse of
        window ``i`` depend on the winning detection of window ``i-1``.  The
        scan dispatches through the compute-kernel layer
        (:func:`repro.kernels.get_kernel`): ``kernel`` selects an
        implementation by name, ``None`` defers to ``$REPRO_KERNEL`` and the
        ``"auto"`` preference.  Every kernel is bit-identical to the
        ``"python"`` reference, so the choice affects speed only.

        Returns ``(times, origins)``: absolute detection times (``NaN`` when
        the window reported nothing) and int8 origin codes (see
        :data:`ORIGIN_BY_CODE`; ``-1`` = missed).  Device state (last fire,
        pending afterpulse) is updated so batches can be chained with scalar
        calls.

        When ``importance`` is given, the photon/dark/afterpulse draws are
        taken from floored proposal distributions (see
        :class:`ImportanceSettings`) and a third array of per-window
        likelihood weights is returned: ``(times, origins, weights)``.
        ``weights[i]`` is the Radon–Nikodym ratio of the natural to the
        proposal distribution over every biased draw that can influence
        window ``i``'s outcome.  The weight product restarts whenever the
        device enters a window in the *fresh* state (armed, no pending
        afterpulse), since earlier draws can then no longer affect later
        windows — weighted statistics of any per-window outcome are
        unbiased estimates of the naive-path statistics.
        """
        if window_duration <= 0:
            raise ValueError("window_duration must be positive")
        offsets = np.asarray(photon_offsets, dtype=float)
        if offsets.ndim != 1:
            raise ValueError("photon_offsets must be one-dimensional")
        if self._last_fire_time is not None and start_time < self._last_fire_time:
            raise ValueError("cannot start a batch before the last avalanche")
        count = offsets.size
        if count == 0:
            if importance is not None:
                return np.empty(0), np.empty(0, dtype=np.int8), np.empty(0)
            return np.empty(0), np.empty(0, dtype=np.int8)
        has_pulse = ~np.isnan(offsets)
        if np.any((offsets[has_pulse] < 0) | (offsets[has_pulse] >= window_duration)):
            raise ValueError("photon offsets must lie inside the window")
        if importance is not None:
            return self._detect_in_windows_importance(
                window_duration, offsets, has_pulse, mean_photons, start_time, importance
            )

        rng = self._random.generator
        duration = float(window_duration)

        # Pre-drawn randomness (one bulk draw per physical process).
        p_detect = self.detection_probability_for_photons(mean_photons)
        detected = (rng.random(count) < p_detect) & has_pulse
        jitter = self.jitter.sample_array(self._random, count)
        photon_rel = np.maximum(np.where(has_pulse, offsets, 0.0) + jitter, 0.0)
        photon_valid = detected & (photon_rel < duration)

        dark_rate = self.dark_counts.rate(self.config.temperature, self.config.excess_bias)
        dark_counts = rng.poisson(dark_rate * duration, count)
        dark_rel = rng.uniform(0.0, duration, int(dark_counts.sum()))
        dark_bounds = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(dark_counts, out=dark_bounds[1:])

        trap_filled = rng.random(count) < self.afterpulsing.probability
        trap_release = rng.exponential(self.afterpulsing.time_constant, count)

        # Sequential-dependency scan, dispatched through the kernel layer.
        # Optional state crosses the boundary as float sentinels: last fire
        # ``None`` -> -inf (armed since forever), pending afterpulse ``None``
        # -> +inf (never) — see ``repro.kernels.reference``.
        last_fire = -inf if self._last_fire_time is None else self._last_fire_time
        pending = inf if self._pending_afterpulse is None else self._pending_afterpulse
        out_times, out_origins, last_fire, pending = get_kernel(kernel).scan_windows(
            photon_rel,
            photon_valid,
            dark_rel,
            dark_bounds,
            trap_filled,
            trap_release,
            self.quenching.dead_time,
            self.quenching.effective_gate_recovery,
            duration,
            float(start_time),
            last_fire,
            pending,
        )

        # Persist the carry-over state for chained batches / scalar calls.
        self._last_fire_time = None if isinf(last_fire) else last_fire
        self._pending_afterpulse = None if isinf(pending) else pending
        self._rearmed_at = None
        return out_times, out_origins

    def _detect_in_windows_importance(
        self,
        window_duration: float,
        offsets: np.ndarray,
        has_pulse: np.ndarray,
        mean_photons: float,
        start_time: float,
        importance: ImportanceSettings,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Importance-sampled twin of the :meth:`detect_in_windows` scan.

        Same state machine, same winner rules; only the three Bernoulli /
        Poisson draw families are taken from floored proposals, and the scan
        additionally tracks a running likelihood-weight product with a
        regenerative reset at fresh-state window starts.
        """
        rng = self._random.generator
        count = offsets.size
        duration = float(window_duration)

        # Photon detection: floor the *miss* probability (the rare event).
        p_detect = self.detection_probability_for_photons(mean_photons)
        miss_prob = 1.0 - p_detect
        proposal_miss = max(miss_prob, importance.min_miss_probability)
        proposal_detect = 1.0 - proposal_miss
        weight_detect = p_detect / proposal_detect if proposal_detect > 0.0 else 0.0
        weight_miss = miss_prob / proposal_miss
        detected = (rng.random(count) < proposal_detect) & has_pulse
        jitter = self.jitter.sample_array(self._random, count)
        photon_rel = np.maximum(np.where(has_pulse, offsets, 0.0) + jitter, 0.0)
        photon_valid = detected & (photon_rel < duration)

        # Dark counts: floor the expected counts per window.  The count is
        # Poisson-biased; arrival positions stay uniform under both measures,
        # so only the count carries weight:
        # w(k) = exp(lam' - lam) * (lam / lam')**k.
        dark_rate = self.dark_counts.rate(self.config.temperature, self.config.excess_bias)
        dark_mean = dark_rate * duration
        proposal_dark_mean = max(dark_mean, importance.min_dark_expectation)
        dark_counts = rng.poisson(proposal_dark_mean, count)
        dark_rel = rng.uniform(0.0, duration, int(dark_counts.sum()))
        dark_bounds = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(dark_counts, out=dark_bounds[1:])
        if proposal_dark_mean > 0.0:
            dark_ratio = dark_mean / proposal_dark_mean
            dark_weight = np.exp(proposal_dark_mean - dark_mean) * np.power(
                dark_ratio, dark_counts.astype(float)
            )
        else:
            dark_weight = np.ones(count)

        # Afterpulse trap fill: floor the fill probability.  The trap draw is
        # only *consumed* when the window fires, so its weight factor applies
        # at the fire site.
        trap_prob = self.afterpulsing.probability
        proposal_trap = max(trap_prob, importance.min_trap_probability)
        trap_filled = rng.random(count) < proposal_trap
        trap_release = rng.exponential(self.afterpulsing.time_constant, count)
        weight_trap_filled = trap_prob / proposal_trap if proposal_trap > 0.0 else 1.0
        weight_trap_empty = (
            (1.0 - trap_prob) / (1.0 - proposal_trap) if proposal_trap < 1.0 else 0.0
        )

        photon_rel_l = photon_rel.tolist()
        photon_valid_l = photon_valid.tolist()
        has_pulse_l = has_pulse.tolist()
        detected_l = detected.tolist()
        dark_rel_l = dark_rel.tolist()
        dark_bounds_l = dark_bounds.tolist()
        dark_weight_l = dark_weight.tolist()
        trap_filled_l = trap_filled.tolist()
        trap_release_l = trap_release.tolist()

        dead_time = self.quenching.dead_time
        gate_recovery = self.quenching.effective_gate_recovery
        last_fire = -inf if self._last_fire_time is None else self._last_fire_time
        pending = self._pending_afterpulse

        out_times: List[float] = []
        out_origins: List[int] = []
        out_weights: List[float] = []
        running = 1.0
        base = float(start_time)
        for index in range(count):
            window_start = base + index * duration
            window_end = window_start + duration
            if window_start - last_fire >= gate_recovery:
                ready = window_start
                # Regenerative reset: with the device armed at the window
                # start and no trap pending, no earlier biased draw can
                # influence this or any later window.
                if pending is None:
                    running = 1.0
            else:
                ready = last_fire + dead_time
            if has_pulse_l[index]:
                running *= weight_detect if detected_l[index] else weight_miss
            running *= dark_weight_l[index]
            best = inf
            origin = ORIGIN_CODE_MISSED
            if photon_valid_l[index]:
                time = window_start + photon_rel_l[index]
                if time >= ready:
                    best = time
                    origin = 0
            for position in range(dark_bounds_l[index], dark_bounds_l[index + 1]):
                time = window_start + dark_rel_l[position]
                if time >= ready and time < best:
                    best = time
                    origin = 1
            if (
                pending is not None
                and window_start <= pending < window_end
                and pending >= ready
                and pending < best
            ):
                best = pending
                origin = 2
            if pending is not None and pending < window_end:
                pending = None
            if origin >= 0:
                out_times.append(best)
                out_origins.append(origin)
                last_fire = best
                running *= weight_trap_filled if trap_filled_l[index] else weight_trap_empty
                if trap_filled_l[index]:
                    pending = best + trap_release_l[index]
                else:
                    pending = None
            else:
                out_times.append(nan)
                out_origins.append(ORIGIN_CODE_MISSED)
            out_weights.append(running)

        self._last_fire_time = None if isinf(last_fire) else last_fire
        self._pending_afterpulse = pending
        self._rearmed_at = None
        return (
            np.asarray(out_times, dtype=float),
            np.asarray(out_origins, dtype=np.int8),
            np.asarray(out_weights, dtype=float),
        )

    # -- continuous detection -------------------------------------------------------
    def first_detection(
        self,
        start: float,
        duration: float,
        photon_times: Optional[np.ndarray] = None,
        mean_photons_per_pulse: float = 1.0,
    ) -> Optional[DetectionEvent]:
        """First detection in ``[start, start + duration)`` given a photon-pulse train."""
        photon_time = None
        if photon_times is not None and len(photon_times) > 0:
            in_window = [t for t in np.asarray(photon_times, dtype=float) if start <= t < start + duration]
            photon_time = min(in_window) if in_window else None
        return self.detect_in_window(start, duration, photon_time, mean_photons_per_pulse)

    def saturated_count_rate(self) -> float:
        """Maximum sustainable detection rate [counts/s]."""
        return self.quenching.max_count_rate()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpadDevice(pdp={self.detection_probability:.2f}, "
            f"dead_time={self.dead_time:.1e}s, dcr={self.dark_count_rate:.0f}cps)"
        )
