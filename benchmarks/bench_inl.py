"""TXT-INL — integral non-linearity bound (paper Section 3).

Paper: "We measured both integral (INL) and differential non-linearity (DNL)
... The INL was below 1 LSB", with correctness over PVT ensured by "regular
calibration so as to ensure a fix bound on resolution".  This benchmark
measures the raw INL of the behavioural carry-chain TDC and the residual INL
after a code-density calibration, including an ablation: what happens when the
calibration acquired at 20 degC is reused at a hotter operating point.
"""

import pytest

from repro.analysis.report import ReportTable, TextReport
from repro.simulation.randomness import RandomSource
from repro.tdc import calibrate_from_code_density, code_density_test
from repro.tdc.calibration import calibration_residual_inl
from repro.tdc.fpga import build_fpga_tdc


def run_inl():
    tdc = build_fpga_tdc(random_source=RandomSource(1))
    raw = code_density_test(tdc, samples=60_000, random_source=RandomSource(2))
    table_20c = calibrate_from_code_density(tdc, samples=120_000, random_source=RandomSource(3))
    calibrated = calibration_residual_inl(tdc, table_20c, probe_points=600)

    # Ablation: drift to 60 degC with the stale 20 degC calibration, then recalibrate.
    tdc.delay_line.set_operating_point(temperature=60.0)
    stale = calibration_residual_inl(tdc, table_20c, probe_points=600)
    fresh_table = calibrate_from_code_density(tdc, samples=120_000, random_source=RandomSource(4))
    recalibrated = calibration_residual_inl(tdc, fresh_table, probe_points=600)
    tdc.delay_line.set_operating_point(temperature=20.0)
    return raw, calibrated, stale, recalibrated


def test_inl_bound_with_calibration(benchmark):
    raw, calibrated, stale, recalibrated = benchmark.pedantic(run_inl, rounds=1, iterations=1)

    report = TextReport(
        "TXT-INL",
        "INL of the proof-of-concept TDC, raw and after calibration",
        paper_claim="INL below 1 LSB; regular calibration keeps the resolution bounded",
    )
    table = ReportTable(columns=["condition", "peak error [LSB]"])
    table.add_row("raw INL (uncalibrated, 20 degC)", raw.inl_peak)
    table.add_row("after calibration at 20 degC", calibrated)
    table.add_row("stale calibration reused at 60 degC", stale)
    table.add_row("after re-calibration at 60 degC", recalibrated)
    report.add_table(table)
    report.add_comparison("INL", "< 1 LSB", f"{calibrated:.2f} LSB (calibrated)")
    report.add_text(
        "Ablation: skipping the periodic re-calibration lets the temperature drift "
        f"degrade the error from {calibrated:.2f} to {stale:.2f} LSB; re-calibrating "
        f"restores {recalibrated:.2f} LSB — the reason the paper relies on regular calibration."
    )
    print()
    print(report.render())

    assert calibrated < 1.0
    assert recalibrated < 1.0
    assert stale > calibrated
