"""Tier-1 tests of the experiment service (``repro serve``).

The contracts under test, in the order the subsystem sells them:

* **bit-identity** — the report served over HTTP equals ``repro run`` /
  :func:`repro.scenarios.run_scenario` for the same scenario/backend/seed,
  mapping for mapping;
* **in-flight dedupe** — two concurrent identical run requests execute the
  simulation exactly once (asserted on ``RunRegistry.executions``);
* **digest cache hits** — a repeated completed request is served straight
  from the :class:`~repro.scenarios.store.ReportStore` without re-running,
  including across a service restart (the run index lives on disk);
* **SSE fan-out** — every point of a run streams to ≥ 2 simultaneous
  subscribers, terminated by exactly one final ``report`` event, and late
  subscribers replay the same stream;
* **shared formats** — ``GET /scenarios`` is byte-for-byte ``repro list
  --json``; artefact reports match ``repro show --json``;
* **typed failure** — binding an occupied port raises
  :class:`~repro.service.ServiceBindError` (CLI exit 4).

The server under test is real: bound to an ephemeral localhost port, spoken
to through :class:`~repro.service.ServiceClient` over actual sockets.
"""

import json
import socket
import threading

import pytest

from repro import frontdoor, run_scenario
from repro.cli import EXIT_PORT_BIND, main as cli_main
from repro.scenarios import get_scenario
from repro.service import (
    ExperimentService,
    ServiceBindError,
    ServiceClient,
    ServiceError,
    serve_app,
)

#: Small but real: 6 grid points of the BER waterfall.
SCENARIO = "ber-vs-photons"
BITS = 128


@pytest.fixture()
def service(tmp_path):
    instance = serve_app(port=0, store=tmp_path / "store", block=False)
    yield instance
    instance.shutdown()


@pytest.fixture()
def client(service):
    return ServiceClient(port=service.port)


class TestSharedFormats:
    def test_scenarios_endpoint_is_the_cli_catalogue(self, client, capsys):
        assert cli_main(["list", "--json"]) == 0
        cli_catalogue = json.loads(capsys.readouterr().out)
        assert client.scenarios() == cli_catalogue == frontdoor.scenario_catalogue()

    def test_artifact_report_is_the_show_json_mapping(self, service, client, capsys):
        report = client.run_and_wait(SCENARIO, seed=5, bits=BITS)
        (artifact,) = client.artifacts()
        assert cli_main(
            ["show", artifact, "--store", str(service.store.root), "--json"]
        ) == 0
        assert client.report(artifact) == json.loads(capsys.readouterr().out) == report

    def test_probe_endpoint_matches_cli_probe(self, service, client, capsys):
        http_probe = client.probe(SCENARIO, seed=5, bits=BITS)
        code = cli_main(
            ["probe", SCENARIO, "--seed", "5", "--bits", str(BITS),
             "--store", str(service.store.root), "--json"]
        )
        cli_probe = json.loads(capsys.readouterr().out)
        assert http_probe == cli_probe
        assert http_probe["state"] == "pending" and code == 4


class TestRunLifecycle:
    def test_served_report_is_bit_identical_to_a_direct_run(self, client):
        served = client.run_and_wait(SCENARIO, seed=3, bits=BITS)
        direct = run_scenario(get_scenario(SCENARIO).with_budget(BITS), seed=3)
        assert served == direct.to_mapping()

    def test_submit_then_status_then_artifact(self, service, client):
        status = client.submit_run(SCENARIO, seed=3, bits=BITS)
        assert status["status"] == "started"
        assert status["scenario"] == SCENARIO
        assert status["backend"] == "batch"
        assert status["points"] == 6
        # Drain to completion via the event stream, then re-read the status.
        events = list(client.events(status["run"]))
        final = client.run(status["run"])
        assert final["state"] == "done"
        assert final["points_done"] == 6
        assert final["artifact"] in client.artifacts()
        assert any(run["run"] == status["run"] for run in client.runs())
        # The artefact on disk verifies and carries the same report.
        envelope = client.artifact(final["artifact"])
        assert envelope["report"] == events[-1][1]["report"]

    def test_scenario_mapping_body_runs_unregistered_scenarios(self, client):
        mapping = {
            "name": "custom-over-http",
            "link_overrides": {"ppm_bits": 4, "mean_detected_photons": 40.0},
            "sweep_axes": {"spad_dead_time": [16e-9, 48e-9]},
            "metrics": ["ber"],
            "bits_per_point": BITS,
        }
        report = client.run_and_wait(mapping)
        assert report["scenario"]["name"] == "custom-over-http"
        assert len(report["points"]) == 2

    def test_stats_counts_runs_and_artifacts(self, service, client):
        from repro.kernels import available_kernels

        assert client.stats() == {
            "executions": 0,
            "runs": 0,
            "running": 0,
            "artifacts": 0,
            "executor": {"name": "serial"},
            "kernels": list(available_kernels()),
        }
        client.run_and_wait(SCENARIO, seed=3, bits=BITS)
        stats = client.stats()
        assert stats["executions"] == 1 and stats["artifacts"] == 1
        # Serial runs still surface their executor telemetry on /stats.
        assert stats["executor"]["name"] == "serial"
        assert stats["executor"]["failures"] == 0


class TestDedupe:
    def test_repeated_completed_request_is_a_cache_hit(self, service, client):
        first = client.run_and_wait(SCENARIO, seed=3, bits=BITS)
        again = client.submit_run(SCENARIO, seed=3, bits=BITS)
        assert again["status"] == "cached"
        assert again["state"] == "done"
        assert service.registry.executions == 1
        # The cached stream still replays every point plus the report.
        events = list(client.events(again["run"]))
        assert [event for event, _ in events] == ["point"] * 6 + ["report"]
        assert events[-1][1]["report"] == first

    def test_concurrent_identical_requests_execute_once(self, service, client):
        # A heavier budget keeps the first request in flight while the
        # second arrives; the executions counter is the ground truth either
        # way (a lost race shows up as "cached", never as a second run).
        bits = 16_384
        statuses, reports = [], []

        def submit_and_wait():
            status = client.submit_run(SCENARIO, seed=11, bits=bits)
            statuses.append(status["status"])
            for event, data in client.events(status["run"]):
                if event == "report":
                    reports.append(data["report"])

        threads = [threading.Thread(target=submit_and_wait) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert service.registry.executions == 1
        assert sorted(statuses) != ["started", "started"]
        assert len(reports) == 2 and reports[0] == reports[1]

    def test_cache_survives_a_service_restart(self, service, client, tmp_path):
        client.run_and_wait(SCENARIO, seed=3, bits=BITS)
        service.shutdown()
        reborn = serve_app(port=0, store=service.store.root, block=False)
        try:
            status = ServiceClient(port=reborn.port).submit_run(SCENARIO, seed=3, bits=BITS)
            assert status["status"] == "cached"
            assert reborn.registry.executions == 0
        finally:
            reborn.shutdown()

    def test_cli_run_is_a_service_cache_hit_and_vice_versa(self, service, client, capsys):
        # Shell and daemon share one store *and* one cache-key policy.
        store = str(service.store.root)
        assert cli_main(["run", SCENARIO, "--bits", str(BITS), "--seed", "8",
                         "--quiet", "--store", store]) == 0
        capsys.readouterr()
        status = client.submit_run(SCENARIO, seed=8, bits=BITS)
        assert status["status"] == "cached"
        assert service.registry.executions == 0
        # And a served run probes as a hit from the shell.
        client.run_and_wait(SCENARIO, seed=9, bits=BITS)
        assert cli_main(["probe", SCENARIO, "--seed", "9", "--bits", str(BITS),
                         "--store", store]) == 0

    def test_different_inputs_do_not_dedupe(self, service, client):
        client.run_and_wait(SCENARIO, seed=3, bits=BITS)
        other = client.submit_run(SCENARIO, seed=4, bits=BITS)
        assert other["status"] == "started"
        list(client.events(other["run"]))
        assert service.registry.executions == 2


class TestEventStream:
    def test_two_simultaneous_subscribers_see_every_point(self, client):
        status = client.submit_run(SCENARIO, seed=21, bits=4_096)
        streams = {}

        def subscribe(label):
            streams[label] = list(client.events(status["run"]))

        threads = [
            threading.Thread(target=subscribe, args=(label,)) for label in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert set(streams) == {"a", "b"}
        for events in streams.values():
            kinds = [event for event, _ in events]
            assert kinds == ["point"] * 6 + ["report"]
            indices = sorted(data["index"] for event, data in events if event == "point")
            assert indices == list(range(6))
            assert all(data["total"] == 6 for event, data in events if event == "point")
        # Both subscribers saw the identical stream, frame for frame.
        assert streams["a"] == streams["b"]

    def test_late_subscriber_replays_the_finished_stream(self, client):
        report = client.run_and_wait(SCENARIO, seed=22, bits=BITS)
        run_key = client.submit_run(SCENARIO, seed=22, bits=BITS)["run"]
        events = list(client.events(run_key))
        assert [event for event, _ in events] == ["point"] * 6 + ["report"]
        assert events[-1][1]["report"] == report

    def test_point_events_carry_the_point_mappings(self, client):
        status = client.submit_run(SCENARIO, seed=23, bits=BITS)
        events = list(client.events(status["run"]))
        report = events[-1][1]["report"]
        streamed = {data["index"]: data["point"] for event, data in events if event == "point"}
        assert list(streamed) and len(streamed) == len(report["points"])
        for index, point in streamed.items():
            assert point == report["points"][index]


class TestErrors:
    def test_unknown_scenario_is_a_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit_run("no-such-scenario", bits=BITS)
        assert excinfo.value.status == 400
        assert "unknown scenario" in str(excinfo.value)

    def test_unknown_run_and_artifact_are_404(self, client):
        for call in (lambda: client.run("feedbeefcafe"),
                     lambda: list(client.events("feedbeefcafe")),
                     lambda: client.artifact("missing")):
            with pytest.raises(ServiceError) as excinfo:
                call()
            assert excinfo.value.status == 404

    def test_unknown_route_404_and_wrong_method_405(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/no/such/route")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/scenarios")
        assert excinfo.value.status == 405

    def test_malformed_body_and_missing_compare_params_are_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/runs", body={"scenario": SCENARIO, "bogus": 1})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/compare?a=x")
        assert excinfo.value.status == 400

    def test_bind_failure_is_typed_and_maps_to_exit_4(self, tmp_path, capsys):
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            with pytest.raises(ServiceBindError):
                ExperimentService(store=tmp_path).serve_forever("127.0.0.1", port)
            code = cli_main(["serve", "--port", str(port), "--store", str(tmp_path)])
            assert code == EXIT_PORT_BIND == 4
            assert "cannot bind" in capsys.readouterr().err
        finally:
            blocker.close()
