"""Vectorised batch transmission engine — the link simulator's fast path.

:class:`FastOpticalLink` is a drop-in replacement for
:class:`~repro.core.link.OpticalLink` that simulates all S symbols of a
payload at once instead of one per Python-interpreter iteration.  The paper's
headline figures (BER vs. range, the TP/DC surfaces) are statistical estimates
needing 10^5–10^7 simulated PPM symbols per operating point; at that scale the
scalar path is interpreter-bound, not model-bound.

Scalar-vs-batch contract
------------------------
The batch engine is *statistically equivalent* to the scalar path — same
physical models, same distributions, same decision rules — but not draw-for-
draw identical: randomness is consumed in bulk array draws (one per physical
process) rather than interleaved per event, so the two paths produce different
(equally valid) sample paths from the same seed.  Each path is individually
deterministic given its seed.

The pipeline is NumPy end to end:

1. PPM encoding packs the whole payload into a symbol-value array and a
   pulse-time array (``PpmCodec.encode_bits_to_values`` /
   ``pulse_times_for_values``).
2. :meth:`SpadDevice.detect_in_windows` pre-draws photon detection Bernoullis,
   jitter, Poisson dark-count arrivals and afterpulse trap releases as arrays,
   then resolves the winner of each window.  Only this winner resolution runs
   as a sequential scan, because dead time and afterpulsing genuinely couple
   consecutive windows: whether window ``i`` re-arms at its start — and which
   trap release is pending — depends on *when* window ``i-1`` fired, which is
   itself a stochastic outcome.  No barrier of array passes can resolve that
   chain, so the scan walks the windows once over plain Python floats.
3. :meth:`TimeToDigitalConverter.convert_array` quantises every detection with
   a single ``np.searchsorted`` against the delay line's cached tap times.
4. ``PpmCodec.decode_times`` maps the measured times back to slot values and
   the bit matrix is unpacked in one shot.

The result is the same :class:`~repro.core.link.TransmissionResult` the scalar
path returns, at a ≥10× (typically 30–100×) symbols/sec advantage on
10^5-symbol workloads (see ``benchmarks/bench_fastpath_speedup.py``).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.config import LinkConfig
from repro.core.link import OpticalLink, TransmissionResult
from repro.modulation.symbols import ints_to_bit_matrix
from repro.photonics.channel import OpticalChannel
from repro.spad.device import ORIGIN_BY_CODE, ImportanceSettings


class FastOpticalLink(OpticalLink):
    """Drop-in :class:`OpticalLink` whose transmit path is the batch engine.

    Construction, configuration, seeding and the returned
    :class:`TransmissionResult` are identical to the scalar link; only
    :meth:`transmit_bits` is overridden.  Use the scalar class when you need
    draw-for-draw reproduction of legacy results, the fast class everywhere
    throughput matters.

    ``importance`` switches the detection core to the importance-sampled
    rare-event path (:class:`~repro.spad.device.ImportanceSettings`): the
    returned result then carries per-symbol likelihood weights in
    ``symbol_weights`` and its *weighted* error statistics are unbiased
    estimates of the naive path's.
    """

    def __init__(
        self,
        config: LinkConfig = LinkConfig(),
        channel: Optional[OpticalChannel] = None,
        seed: int = 0,
        importance: Optional[ImportanceSettings] = None,
        kernel: Optional[str] = None,
    ) -> None:
        super().__init__(config=config, channel=channel, seed=seed)
        self.importance = importance
        self.kernel = kernel

    def transmit_bits(self, bits: Sequence[int]) -> TransmissionResult:
        """Send a payload over the link, simulating every symbol in one batch.

        Same contract as :meth:`OpticalLink.transmit_bits`: the payload is
        padded with zeros to a whole number of symbols and error statistics
        cover the original bit positions.
        """
        raw = np.asarray(bits)
        if raw.size == 0:
            raise ValueError("bits must be non-empty")
        # Validate before casting: an int64 cast would silently truncate
        # fractional "bits" that the scalar path rejects.
        if not np.isin(raw, (0, 1)).all():
            raise ValueError("bits must be 0 or 1")
        payload_arr = raw.astype(np.int64, copy=False)
        payload = payload_arr.tolist()
        k = self.config.ppm_bits
        remainder = len(payload) % k
        if remainder:
            padded = np.concatenate([payload_arr, np.zeros(k - remainder, dtype=np.int64)])
        else:
            padded = payload_arr

        values = self.codec.encode_bits_to_values(padded)
        symbol_count = int(values.size)
        symbol_duration = self.config.symbol_duration
        mean_photons = self.mean_photons_at_detector()

        # The receiver's windows are assumed aligned to the (symbol-invariant)
        # propagation delay by clock recovery, so pulse times are window-
        # relative slot centres; the channel only enters through attenuation.
        pulse_offsets = self.codec.pulse_times_for_values(values)

        self.spad.reset()
        symbol_weights = None
        if self.importance is not None:
            times, origins, symbol_weights = self.spad.detect_in_windows(
                symbol_duration, pulse_offsets, mean_photons, importance=self.importance
            )
        else:
            times, origins = self.spad.detect_in_windows(
                symbol_duration, pulse_offsets, mean_photons, kernel=self.kernel
            )

        detected = origins >= 0
        decoded = np.zeros(symbol_count, dtype=np.int64)
        if np.any(detected):
            window_starts = np.flatnonzero(detected).astype(float) * symbol_duration
            relative = times[detected] - window_starts
            relative = np.clip(relative, 0.0, self.tdc.usable_range * 0.999999)
            conversion = self.tdc.convert_array(relative)
            measured = np.clip(
                conversion.measured_times, 0.0, symbol_duration * 0.999999
            )
            decoded[detected] = self.codec.decode_times(measured)

        received_matrix = ints_to_bit_matrix(decoded, k)
        received_bits = received_matrix.ravel().tolist()

        counts = {origin.value: 0 for origin in ORIGIN_BY_CODE.values()}
        counts["missed"] = int(np.count_nonzero(~detected))
        codes, code_counts = np.unique(origins[detected], return_counts=True)
        for code, code_count in zip(codes, code_counts):
            counts[ORIGIN_BY_CODE[int(code)].value] = int(code_count)

        return TransmissionResult(
            transmitted_bits=payload,
            received_bits=received_bits[: len(payload)],
            symbols_sent=symbol_count,
            symbol_errors=int(np.count_nonzero(decoded != values)),
            detection_counts=counts,
            elapsed_time=symbol_count * symbol_duration,
            symbol_weights=symbol_weights,
            symbol_origins=origins if self.importance is not None else None,
        )
