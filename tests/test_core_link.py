"""Tests for repro.core.link — the end-to-end PPM link."""

import pytest

from repro.analysis.units import NM, NS, PS
from repro.core.config import LinkConfig
from repro.core.link import OpticalLink, TransmissionResult
from repro.photonics.channel import OpticalChannel
from repro.photonics.stack import DieStack


class TestTransmission:
    def test_error_free_at_high_photon_count(self):
        link = OpticalLink(LinkConfig(ppm_bits=4, mean_detected_photons=200.0), seed=1)
        result = link.transmit_bits([1, 0, 1, 1, 0, 0, 1, 0] * 4)
        assert result.bit_errors == 0
        assert result.symbol_errors == 0
        assert result.detection_counts["photon"] == result.symbols_sent

    def test_payload_preserved_and_padded(self):
        link = OpticalLink(LinkConfig(ppm_bits=4, mean_detected_photons=200.0), seed=2)
        payload = [1, 0, 1, 1, 0]  # 5 bits -> padded to 8
        result = link.transmit_bits(payload)
        assert result.transmitted_bits == payload
        assert len(result.received_bits) == len(payload)
        assert result.symbols_sent == 2

    def test_zero_photons_loses_everything(self):
        link = OpticalLink(LinkConfig(ppm_bits=4, mean_detected_photons=0.0), seed=3)
        result = link.transmit_bits([1] * 16)
        assert result.detection_counts["missed"] == result.symbols_sent
        assert result.bit_errors > 0

    def test_throughput_matches_configuration(self):
        config = LinkConfig(ppm_bits=4)
        link = OpticalLink(config, seed=4)
        result = link.transmit_random(400)
        assert result.throughput == pytest.approx(config.raw_bit_rate, rel=1e-6)
        assert result.elapsed_time == pytest.approx(result.symbols_sent * config.symbol_duration)

    def test_ber_improves_with_photon_count(self):
        dim = OpticalLink(LinkConfig(ppm_bits=4, mean_detected_photons=2.0), seed=5)
        bright = OpticalLink(LinkConfig(ppm_bits=4, mean_detected_photons=100.0), seed=5)
        dim_result = dim.transmit_random(2000)
        bright_result = bright.transmit_random(2000)
        assert bright_result.bit_error_rate < dim_result.bit_error_rate

    def test_wider_slots_reduce_jitter_errors(self):
        narrow = OpticalLink(LinkConfig(ppm_bits=4, slot_duration=200 * PS), seed=6)
        wide = OpticalLink(LinkConfig(ppm_bits=4, slot_duration=2 * NS), seed=6)
        assert wide.transmit_random(3000).bit_error_rate <= narrow.transmit_random(3000).bit_error_rate

    def test_validation(self):
        link = OpticalLink(seed=0)
        with pytest.raises(ValueError):
            link.transmit_bits([])
        with pytest.raises(ValueError):
            link.transmit_bits([2])
        with pytest.raises(ValueError):
            link.transmit_random(0)

    def test_reproducible_for_fixed_seed(self):
        a = OpticalLink(LinkConfig(ppm_bits=4, mean_detected_photons=3.0), seed=9).transmit_random(1000)
        b = OpticalLink(LinkConfig(ppm_bits=4, mean_detected_photons=3.0), seed=9).transmit_random(1000)
        assert a.received_bits == b.received_bits


class TestWithChannel:
    def test_channel_attenuates_photon_budget(self):
        stack = DieStack.uniform(count=6, wavelength=850 * NM)
        channel = OpticalChannel(stack=stack, source_layer=0, destination_layer=5)
        config = LinkConfig(ppm_bits=4, mean_detected_photons=1000.0, wavelength=850 * NM)
        with_channel = OpticalLink(config, channel=channel, seed=1)
        without = OpticalLink(config, seed=1)
        assert with_channel.mean_photons_at_detector() < without.mean_photons_at_detector()
        assert with_channel.detection_probability_per_pulse() <= without.detection_probability_per_pulse()

    def test_deep_stack_degrades_ber(self):
        config = LinkConfig(ppm_bits=4, mean_detected_photons=300.0, wavelength=650 * NM)
        shallow_stack = DieStack.uniform(count=2, wavelength=650 * NM)
        deep_stack = DieStack.uniform(count=12, wavelength=650 * NM)
        shallow = OpticalLink(
            config, channel=OpticalChannel(stack=shallow_stack, source_layer=0, destination_layer=1), seed=2
        )
        deep = OpticalLink(
            config, channel=OpticalChannel(stack=deep_stack, source_layer=0, destination_layer=11), seed=2
        )
        assert deep.transmit_random(1500).bit_error_rate >= shallow.transmit_random(1500).bit_error_rate


class TestTransmissionResult:
    def test_statistics_properties(self):
        result = TransmissionResult(
            transmitted_bits=[0, 1, 1, 0],
            received_bits=[0, 1, 0, 0],
            symbols_sent=1,
            symbol_errors=1,
            detection_counts={"photon": 1, "dark_count": 0, "afterpulse": 0, "missed": 0},
            elapsed_time=32e-9,
        )
        assert result.bit_errors == 1
        assert result.bit_error_rate == pytest.approx(0.25)
        assert result.symbol_error_rate == pytest.approx(1.0)
        assert "BER" in result.summary()

    def test_empty_statistics_raise(self):
        result = TransmissionResult(
            transmitted_bits=[], received_bits=[], symbols_sent=0, symbol_errors=0,
            detection_counts={}, elapsed_time=0.0,
        )
        with pytest.raises(ValueError):
            _ = result.bit_error_rate
        with pytest.raises(ValueError):
            _ = result.symbol_error_rate
        with pytest.raises(ValueError):
            _ = result.throughput
