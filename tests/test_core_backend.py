"""Tests for repro.core.backend — the link-backend protocol and registry."""

import numpy as np
import pytest

from repro.core.backend import (
    BackendCapabilities,
    LinkBackend,
    available_backends,
    backend_capabilities,
    make_link,
    register_backend,
    resolve_backend,
)
from repro.core.ber import monte_carlo_bit_error_rate
from repro.core.config import LinkConfig
from repro.core.fastlink import FastOpticalLink
from repro.core.link import OpticalLink, TransmissionResult

MODERATE = LinkConfig(ppm_bits=4, mean_detected_photons=5.0)


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(available_backends()) >= {"scalar", "batch"}

    def test_resolve_default_and_alias(self):
        assert resolve_backend(None) == "batch"
        assert resolve_backend("fast") == "batch"
        assert resolve_backend("scalar") == "scalar"
        assert resolve_backend("array") == "multichannel"

    def test_unknown_backend_lists_available(self):
        with pytest.raises(ValueError, match="available:"):
            resolve_backend("gpu")

    def test_non_string_backend_rejected(self):
        with pytest.raises(TypeError):
            resolve_backend(True)

    def test_capabilities(self):
        assert backend_capabilities("batch").supports_batch
        assert not backend_capabilities("scalar").supports_batch
        assert backend_capabilities("scalar").draw_for_draw_reference
        # Single-channel engines do not accept channels=; the array engine does.
        assert not backend_capabilities("batch").supports_multichannel
        assert backend_capabilities("multichannel").supports_multichannel
        assert backend_capabilities("multichannel").supports_batch
        assert backend_capabilities(None) == backend_capabilities("batch")

    def test_channels_rejected_without_multichannel_support(self):
        with pytest.raises(ValueError, match="supports_multichannel"):
            make_link(MODERATE, backend="batch", channels=4)
        # channels=1 (or None) is the single-channel default everywhere.
        assert isinstance(make_link(MODERATE, backend="batch", channels=1), FastOpticalLink)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(
                "batch", FastOpticalLink, BackendCapabilities(supports_batch=True)
            )
        with pytest.raises(ValueError, match="already registered"):
            register_backend(
                "mine",
                FastOpticalLink,
                BackendCapabilities(supports_batch=True),
                aliases=("fast",),
            )

    def test_custom_backend_registration_and_dispatch(self):
        calls = []

        def factory(config, channel=None, seed=0):
            calls.append((config, channel, seed))
            return OpticalLink(config, channel=channel, seed=seed)

        register_backend(
            "test-custom", factory, BackendCapabilities(supports_batch=False)
        )
        try:
            link = make_link(MODERATE, backend="test-custom", seed=5)
            assert isinstance(link, OpticalLink)
            assert calls == [(MODERATE, None, 5)]
            assert "test-custom" in available_backends()
        finally:
            # Re-register over it so other tests see a clean-ish registry.
            register_backend(
                "test-custom",
                factory,
                BackendCapabilities(supports_batch=False),
                replace=True,
            )


class TestMakeLink:
    def test_returns_registered_classes(self):
        assert isinstance(make_link(MODERATE, backend="scalar"), OpticalLink)
        batch = make_link(MODERATE, backend="batch")
        assert isinstance(batch, FastOpticalLink)
        assert type(make_link(MODERATE)) is FastOpticalLink

    def test_default_config(self):
        link = make_link()
        assert link.config == LinkConfig()

    def test_links_satisfy_protocol(self):
        for backend in ("scalar", "batch"):
            link = make_link(MODERATE, backend=backend)
            assert isinstance(link, LinkBackend)
            result = link.transmit_bits([1, 0, 1, 1])
            assert isinstance(result, TransmissionResult)

    def test_seed_threading(self):
        a = make_link(MODERATE, backend="batch", seed=3).transmit_random(2000)
        b = make_link(MODERATE, backend="batch", seed=3).transmit_random(2000)
        c = make_link(MODERATE, backend="batch", seed=4).transmit_random(2000)
        assert a.received_bits == b.received_bits
        assert a.received_bits != c.received_bits


class TestBackendParity:
    """Same seed => statistically equivalent results across backends."""

    BITS = 16_000

    def test_ber_parity_within_monte_carlo_tolerance(self):
        results = {
            backend: make_link(MODERATE, backend=backend, seed=21).transmit_random(self.BITS)
            for backend in ("scalar", "batch")
        }
        p = max(results["scalar"].bit_error_rate, 1.0 / self.BITS)
        tolerance = 5.0 * 2.0 * np.sqrt(2.0 * p * (1 - p) / self.BITS)
        assert abs(
            results["scalar"].bit_error_rate - results["batch"].bit_error_rate
        ) < tolerance

    def test_estimator_parity_through_backend_argument(self):
        estimates = {
            backend: monte_carlo_bit_error_rate(MODERATE, bits=8_000, seed=3, backend=backend)
            for backend in ("scalar", "batch")
        }
        combined = estimates["scalar"].confidence_95 + estimates["batch"].confidence_95
        assert estimates["scalar"].ber == pytest.approx(
            estimates["batch"].ber, abs=5.0 * combined
        )


class TestFastRemoval:
    def test_legacy_fast_keyword_is_gone(self):
        # The pre-registry boolean spelling was deprecated in PR 2 and removed
        # in PR 3; backend= is the only way to pick an engine.
        with pytest.raises(TypeError):
            monte_carlo_bit_error_rate(MODERATE, bits=100, fast=True)
