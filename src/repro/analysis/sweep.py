"""Parameter-sweep utilities.

Design-space exploration in the paper (Figure 4) is a 2-D sweep over the
number of fine delay elements N and the coarse range bits C.  The helpers in
this module provide a small, dependency-free way to express such sweeps and
collect their results into arrays suitable for tabulation or heatmaps.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class SweepPoint:
    """A single evaluated point of a sweep: parameter values and the result."""

    parameters: Tuple[Tuple[str, Any], ...]
    value: Any

    def parameter(self, name: str) -> Any:
        for key, val in self.parameters:
            if key == name:
                return val
        raise KeyError(name)

    def as_dict(self) -> Dict[str, Any]:
        out = dict(self.parameters)
        out["value"] = self.value
        return out


@dataclass
class SweepResult:
    """Collection of :class:`SweepPoint` with convenience accessors."""

    parameter_names: Tuple[str, ...]
    points: List[SweepPoint] = field(default_factory=list)

    def append(self, parameters: Mapping[str, Any], value: Any) -> None:
        ordered = tuple((name, parameters[name]) for name in self.parameter_names)
        self.points.append(SweepPoint(ordered, value))

    def values(self) -> List[Any]:
        return [point.value for point in self.points]

    def column(self, name: str) -> List[Any]:
        return [point.parameter(name) for point in self.points]

    def as_grid(self, row: str, col: str, transform: Callable[[Any], float] = float) -> Tuple[
        np.ndarray, np.ndarray, np.ndarray
    ]:
        """Reshape results into a 2-D grid indexed by two parameter axes.

        Returns ``(row_values, col_values, grid)`` where ``grid[i, j]`` is the
        transformed value at ``row_values[i], col_values[j]``.  Missing points
        are NaN.
        """
        row_values = sorted(set(self.column(row)))
        col_values = sorted(set(self.column(col)))
        grid = np.full((len(row_values), len(col_values)), np.nan)
        row_index = {value: i for i, value in enumerate(row_values)}
        col_index = {value: j for j, value in enumerate(col_values)}
        for point in self.points:
            i = row_index[point.parameter(row)]
            j = col_index[point.parameter(col)]
            grid[i, j] = transform(point.value)
        return np.asarray(row_values), np.asarray(col_values), grid

    def to_records(self) -> List[Dict[str, Any]]:
        """Points as a list of flat dicts, in insertion order.

        Each record maps every parameter name (in ``parameter_names`` order)
        to its value, plus ``"value"`` for the result — the interchange shape
        for anything that wants to tabulate or serialise a sweep.
        """
        return [point.as_dict() for point in self.points]

    def best(self, key: Callable[[SweepPoint], float], maximize: bool = True) -> SweepPoint:
        """Return the point with extreme ``key``; raises on an empty sweep."""
        if not self.points:
            raise ValueError("sweep has no points")
        return max(self.points, key=key) if maximize else min(self.points, key=key)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)


@dataclass
class Sweep:
    """Declarative grid sweep over named parameter axes.

    >>> sweep = Sweep({"n": [1, 2], "c": [0, 1]})
    >>> result = sweep.run(lambda n, c: n + c)
    >>> sorted(result.values())
    [1, 2, 2, 3]
    """

    axes: Mapping[str, Sequence[Any]]

    def __post_init__(self) -> None:
        if not self.axes:
            raise ValueError("a sweep needs at least one axis")
        # Normalise to a plain dict of tuples so that (a) the axis order is
        # exactly the mapping's insertion order, deterministically, and (b)
        # one-shot iterables (generators) are materialised once instead of
        # being silently exhausted between size()/combinations() calls.
        self.axes = {name: tuple(values) for name, values in self.axes.items()}
        for name, values in self.axes.items():
            if len(values) == 0:
                raise ValueError(f"axis {name!r} has no values")

    @property
    def parameter_names(self) -> Tuple[str, ...]:
        return tuple(self.axes.keys())

    def combinations(self) -> Iterable[Dict[str, Any]]:
        names = self.parameter_names
        for combo in itertools.product(*(self.axes[name] for name in names)):
            yield dict(zip(names, combo))

    def size(self) -> int:
        size = 1
        for values in self.axes.values():
            size *= len(values)
        return size

    def run(self, function: Callable[..., Any]) -> SweepResult:
        """Evaluate ``function(**parameters)`` on every grid point."""
        result = SweepResult(self.parameter_names)
        for parameters in self.combinations():
            result.append(parameters, function(**parameters))
        return result


def grid_sweep(function: Callable[..., Any], **axes: Sequence[Any]) -> SweepResult:
    """Functional shorthand for ``Sweep(axes).run(function)``."""
    return Sweep(dict(axes)).run(function)


def link_ber_sweep(
    base_config,
    axes: Mapping[str, Sequence[Any]],
    bits_per_point: int = 4_096,
    seed: int = 0,
    backend: Optional[str] = None,
) -> SweepResult:
    """Grid sweep of the Monte-Carlo BER over :class:`LinkConfig` fields.

    Each axis names a ``LinkConfig`` field (``mean_detected_photons``,
    ``extra_guard``, ``ppm_bits``, ...); every grid point re-derives the
    configuration with :func:`dataclasses.replace` and estimates its BER
    through the link-backend registry — ``backend`` picks the engine by name,
    so no sweep ever references a concrete link class.  The per-point value is
    a :class:`~repro.core.ber.BerEstimate`.
    """
    # Imported lazily: repro.core.config imports repro.analysis.units, so a
    # module-level import of repro.core here would be circular.
    from dataclasses import replace

    from repro.core.ber import monte_carlo_bit_error_rate

    sweep = Sweep(dict(axes))
    result = SweepResult(sweep.parameter_names)
    for index, parameters in enumerate(sweep.combinations()):
        point_config = replace(base_config, **parameters)
        estimate = monte_carlo_bit_error_rate(
            point_config, bits=bits_per_point, seed=seed + index, backend=backend
        )
        result.append(parameters, estimate)
    return result
