"""Core of the reproduction: the paper's optical interconnect.

This package ties the substrates together into the system the paper proposes:

* :mod:`repro.core.throughput` — the analytical model of Section 3:
  measurement window ``MW(N, C)``, throughput ``TP(N, C)`` and SPAD detection
  cycle ``DC(N, C)`` (Figure 4).
* :mod:`repro.core.design_space` — exploration of the (N, C) plane and design
  selection under dead-time/resolution constraints.
* :mod:`repro.core.config` / :mod:`repro.core.link` — the end-to-end optical
  link simulator (micro-LED → channel → SPAD → TDC → PPM decoder).
* :mod:`repro.core.fastlink` — the vectorised batch transmission engine, the
  fast path for Monte-Carlo-scale symbol ensembles.
* :mod:`repro.core.multilink` — the multichannel SPAD-array engine: all
  symbols of all parallel channels as one ``(S, C)`` pass, with optical
  crosstalk between neighbours.
* :mod:`repro.core.backend` — the :class:`LinkBackend` protocol and registry:
  :func:`make_link` is the single front door through which every consumer
  constructs a link, selecting ``"batch"``, ``"scalar"`` or
  ``"multichannel"`` by name.
* :mod:`repro.core.error_model` / :mod:`repro.core.ber` — analytic and
  Monte-Carlo symbol/bit error rates from jitter, dark counts, afterpulsing
  and missed detections.
* :mod:`repro.core.power` / :mod:`repro.core.area` — transceiver power and
  area versus a conventional pad.
* :mod:`repro.core.link_budget` — optical power budget over the die stack.
* :mod:`repro.core.calibration` — the periodic-recalibration policy that keeps
  the TDC resolution bounded without dynamic PVT compensation.
* :mod:`repro.core.clocking` — the optical clock distribution extension
  sketched in the paper's conclusions.
"""

from repro.core.throughput import (
    TdcDesign,
    bits_per_symbol,
    detection_cycle,
    measurement_window,
    throughput,
)
from repro.core.design_space import DesignPoint, DesignSpace, figure4_grid
from repro.core.config import LinkConfig
from repro.core.link import OpticalLink, TransmissionResult
from repro.core.fastlink import FastOpticalLink
from repro.core.multilink import MultichannelOpticalLink, MultichannelResult
from repro.core.backend import (
    BackendCapabilities,
    LinkBackend,
    available_backends,
    backend_capabilities,
    make_link,
    register_backend,
    resolve_backend,
)
from repro.core.error_model import ErrorBudget, symbol_error_budget
from repro.core.ber import analytic_bit_error_rate, monte_carlo_bit_error_rate
from repro.core.power import PowerBreakdown, link_power, pad_power_comparison
from repro.core.area import AreaBreakdown, link_area, pad_area_comparison
from repro.core.link_budget import LinkBudget, close_link_budget
from repro.core.calibration import CalibrationPolicy
from repro.core.clocking import ClockDistributionComparison, OpticalClockDistribution

__all__ = [
    "TdcDesign",
    "measurement_window",
    "throughput",
    "detection_cycle",
    "bits_per_symbol",
    "DesignPoint",
    "DesignSpace",
    "figure4_grid",
    "LinkConfig",
    "OpticalLink",
    "FastOpticalLink",
    "MultichannelOpticalLink",
    "MultichannelResult",
    "TransmissionResult",
    "LinkBackend",
    "BackendCapabilities",
    "make_link",
    "register_backend",
    "resolve_backend",
    "available_backends",
    "backend_capabilities",
    "ErrorBudget",
    "symbol_error_budget",
    "analytic_bit_error_rate",
    "monte_carlo_bit_error_rate",
    "PowerBreakdown",
    "link_power",
    "pad_power_comparison",
    "AreaBreakdown",
    "link_area",
    "pad_area_comparison",
    "LinkBudget",
    "close_link_budget",
    "CalibrationPolicy",
    "OpticalClockDistribution",
    "ClockDistributionComparison",
]
