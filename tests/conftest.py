"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import LinkConfig


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "scenario_smoke: tiny-budget end-to-end run of every named scenario "
        "(the tier-1 wiring of benchmarks/bench_scenarios.py)",
    )
    config.addinivalue_line(
        "markers",
        "docs_smoke: executes the front-door doctests and the README code "
        "blocks so the documentation stays runnable",
    )
    config.addinivalue_line(
        "markers",
        "chaos: deterministic fault-injection suite (worker crashes, hangs, "
        "corrupt results) proving recovery stays bit-identical; also run "
        "standalone in CI via `pytest -m chaos`",
    )
    config.addinivalue_line(
        "markers",
        "stats: statistical-equivalence suite (importance sampling vs naive "
        "Monte-Carlo, adaptive CI budgets) built on tests/_stats.py; also "
        "run standalone in CI via `pytest -m stats`",
    )
    config.addinivalue_line(
        "markers",
        "cluster: distributed-execution suite (repro.cluster) driving real "
        "localhost socket workers; the heavier fleet scenarios also run "
        "standalone in CI via scripts/cluster_smoke.py",
    )
from repro.simulation.randomness import RandomSource
from repro.tdc.fpga import VIRTEX2PRO_PROFILE, build_fpga_delay_line, build_fpga_tdc


@pytest.fixture
def random_source() -> RandomSource:
    """A deterministic random source shared by stochastic tests."""
    return RandomSource(seed=12345)


@pytest.fixture
def fpga_delay_line():
    """The paper's 96-element Virtex-II Pro carry-chain delay line at 20 degC."""
    return build_fpga_delay_line(VIRTEX2PRO_PROFILE, random_source=RandomSource(7), temperature=20.0)


@pytest.fixture
def fpga_tdc():
    """The paper's proof-of-concept TDC (200 MHz clock, fine-only range)."""
    return build_fpga_tdc(random_source=RandomSource(7))


@pytest.fixture
def default_link_config() -> LinkConfig:
    """The default 16-PPM link configuration used across link-level tests."""
    return LinkConfig(ppm_bits=4)
