"""Modulation and coding substrate.

Pulse-position modulation (PPM) is the paper's chosen line code: K bits are
encoded as the position of a single optical pulse within 2^K time slots of a
range R, which lets the link amortise the SPAD's long detection cycle over
several bits per detected photon.  The subpackage also provides the framing
needed to delimit symbols, alternative line codes used as ablation baselines
(on-off keying, differential PPM), a self-synchronising scrambler and an
optional Hamming SEC-DED error-correction layer.
"""

from repro.modulation.symbols import SlotGrid, bits_to_int, int_to_bits
from repro.modulation.ppm import PpmCodec, PpmSymbol
from repro.modulation.framing import Frame, FrameSync, Preamble
from repro.modulation.line_coding import DifferentialPpmCodec, OnOffKeyingCodec
from repro.modulation.scrambler import MultiplicativeScrambler
from repro.modulation.error_correction import HammingSecDed

__all__ = [
    "SlotGrid",
    "bits_to_int",
    "int_to_bits",
    "PpmCodec",
    "PpmSymbol",
    "Frame",
    "FrameSync",
    "Preamble",
    "OnOffKeyingCodec",
    "DifferentialPpmCodec",
    "MultiplicativeScrambler",
    "HammingSecDed",
]
