"""Process abstraction for the discrete-event kernel.

A :class:`Process` is an object that reacts to events addressed to it and may
schedule further events on the simulator.  Device models (SPAD front end, TDC
sampler, PPM transmitter) subclass it.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.engine import Simulator
    from repro.simulation.events import Event


class ProcessState(enum.Enum):
    """Lifecycle of a process within a simulation."""

    CREATED = "created"
    RUNNING = "running"
    STOPPED = "stopped"


class Process:
    """Base class for event-driven simulation processes.

    Subclasses override :meth:`on_start` (to schedule their first events) and
    :meth:`on_event` (to react to events whose ``payload`` targets them).
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("process name must be non-empty")
        self.name = name
        self.state = ProcessState.CREATED
        self._simulator: "Simulator | None" = None

    # -- wiring -------------------------------------------------------------
    def bind(self, simulator: "Simulator") -> None:
        """Attach the process to a simulator (called by ``Simulator.add_process``)."""
        if self._simulator is not None and self._simulator is not simulator:
            raise RuntimeError(f"process {self.name!r} is already bound to a simulator")
        self._simulator = simulator

    @property
    def simulator(self) -> "Simulator":
        if self._simulator is None:
            raise RuntimeError(f"process {self.name!r} is not bound to a simulator")
        return self._simulator

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.simulator.now

    def schedule(self, delay: float, kind: str, payload: Any = None, priority: int = 0):
        """Schedule an event addressed to this process ``delay`` seconds from now."""
        return self.simulator.schedule(delay, kind=kind, payload=payload, target=self, priority=priority)

    # -- lifecycle hooks ----------------------------------------------------
    def on_start(self) -> None:
        """Called once when the simulation starts.  Default: no-op."""

    def on_event(self, event: "Event") -> None:
        """Called for every event targeted at this process.  Default: no-op."""

    def on_stop(self) -> None:
        """Called when the simulation finishes.  Default: no-op."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, state={self.state.value})"
