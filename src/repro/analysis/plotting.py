"""Text-mode rendering of benchmark figures.

The benchmark harness has to regenerate the *shape* of the paper's figures
without any plotting dependency, so the renderers here produce ASCII art and
CSV-ready series that can be inspected directly in the terminal or piped into
an external plotting tool.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def ascii_histogram(
    values: Sequence[float],
    labels: Optional[Sequence[str]] = None,
    width: int = 50,
    fill: str = "#",
) -> str:
    """Render a horizontal bar chart of ``values``.

    >>> print(ascii_histogram([1.0, 2.0], labels=["a", "b"], width=4))
    a |##   1
    b |#### 2
    """
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        return "(empty)"
    if labels is None:
        labels = [str(i) for i in range(array.size)]
    if len(labels) != array.size:
        raise ValueError("labels length must match values length")
    peak = float(np.max(np.abs(array))) or 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, array):
        bar_length = int(round(abs(value) / peak * width))
        bar = fill * bar_length
        lines.append(f"{label:<{label_width}} |{bar:<{width}} {value:g}")
    return "\n".join(lines)


def ascii_line_plot(
    x: Sequence[float],
    y: Sequence[float],
    width: int = 70,
    height: int = 20,
    marker: str = "*",
) -> str:
    """Render a scatter/line plot of ``y`` versus ``x`` on a character grid."""
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.size == 0 or x_arr.size != y_arr.size:
        raise ValueError("x and y must be non-empty and of equal length")
    x_min, x_max = float(x_arr.min()), float(x_arr.max())
    y_min, y_max = float(y_arr.min()), float(y_arr.max())
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for xi, yi in zip(x_arr, y_arr):
        col = int(round((xi - x_min) / x_span * (width - 1)))
        row = int(round((yi - y_min) / y_span * (height - 1)))
        grid[height - 1 - row][col] = marker
    lines = ["".join(row) for row in grid]
    header = f"y: [{y_min:.4g}, {y_max:.4g}]  x: [{x_min:.4g}, {x_max:.4g}]"
    return header + "\n" + "\n".join("|" + line for line in lines) + "\n+" + "-" * width


def ascii_heatmap(
    grid: np.ndarray,
    row_labels: Optional[Sequence] = None,
    col_labels: Optional[Sequence] = None,
    palette: str = " .:-=+*#%@",
) -> str:
    """Render a 2-D array as a character heatmap (dark = low, dense = high).

    NaN cells are rendered as ``'?'``.
    """
    array = np.asarray(grid, dtype=float)
    if array.ndim != 2 or array.size == 0:
        raise ValueError("grid must be a non-empty 2-D array")
    finite = array[np.isfinite(array)]
    low = float(finite.min()) if finite.size else 0.0
    high = float(finite.max()) if finite.size else 1.0
    span = (high - low) or 1.0
    rows, cols = array.shape
    if row_labels is None:
        row_labels = [str(i) for i in range(rows)]
    if col_labels is None:
        col_labels = [str(j) for j in range(cols)]
    label_width = max(len(str(label)) for label in row_labels)
    lines = []
    header = " " * (label_width + 1) + "".join(str(label)[0] for label in col_labels)
    lines.append(header)
    for i in range(rows):
        chars = []
        for j in range(cols):
            value = array[i, j]
            if not np.isfinite(value):
                chars.append("?")
                continue
            level = int((value - low) / span * (len(palette) - 1))
            chars.append(palette[level])
        lines.append(f"{str(row_labels[i]):>{label_width}} " + "".join(chars))
    lines.append(f"scale: '{palette[0]}'={low:.4g} .. '{palette[-1]}'={high:.4g}")
    return "\n".join(lines)


def series_csv(x: Sequence[float], *ys: Sequence[float], header: Optional[Sequence[str]] = None) -> str:
    """Format one or more series as CSV text (for copy/paste into a plotter)."""
    x_arr = np.asarray(x, dtype=float)
    columns = [np.asarray(y, dtype=float) for y in ys]
    for column in columns:
        if column.size != x_arr.size:
            raise ValueError("all series must have the same length as x")
    lines = []
    if header is not None:
        if len(header) != 1 + len(columns):
            raise ValueError("header must name x and every series")
        lines.append(",".join(header))
    for i in range(x_arr.size):
        row = [f"{x_arr[i]:.6g}"] + [f"{column[i]:.6g}" for column in columns]
        lines.append(",".join(row))
    return "\n".join(lines)
