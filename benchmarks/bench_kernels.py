"""KERNELS — native compute kernels vs. the last Python hot loops.

Times the two loops :mod:`repro.kernels` replaces, on the workloads where the
Python tiers actually hurt:

* **Window resolution** — the multichannel winner-resolution sweep of
  :func:`repro.spad.array.detect_multichannel` on an *afterpulsing-heavy*
  workload: most windows arm a trap and release it within the next couple of
  windows, so the Python fast path's exception sweep
  (``_resolve_windows_fast``) degenerates toward per-window Python work.
  The native kernel (numba or the self-compiled C extension) runs the same
  sequential physics without the interpreter.
* **Arbitration scheduling** — the per-slot
  :meth:`~repro.noc.arbitration.RoundRobinArbiter.grant` loop of
  :meth:`~repro.noc.bus.OpticalBus.run` against the vectorised
  speculate-and-commit schedule (:func:`repro.kernels.round_robin_schedule`)
  on a saturated >1e5-request workload.

Both comparisons assert bit-identical outputs before they assert speed —
kernels are an optimisation, never a physics change.  Measurements land in
``BENCH_kernels.json`` at the repository root (read-modify-write so the two
tests share one record).  The acceptance bars are >=5x on the resolver path
and >=5x slots/sec on the arbitration path.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.analysis.report import ReportTable, TextReport
from repro.analysis.units import format_si
from repro.kernels import available_kernels, get_kernel, round_robin_schedule
from repro.noc.arbitration import RoundRobinArbiter
from repro.spad.array import _resolve_windows_fast

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"

DURATION = 2e-8
DEAD_TIME = 1.1e-8
GATE_RECOVERY = 2e-9

RESOLVE_WINDOWS = 20_000
RESOLVE_CHANNELS = 16
SECONDARIES = 2

ARBITER_NODES = 16
ARBITER_REQUESTS = 120_000  # >1e5-request acceptance workload
ARBITER_HORIZON = 10**9  # effectively unbounded: drain everything


def _update_record(key, payload):
    """Merge one test's measurements into the shared perf record."""
    record = json.loads(RECORD_PATH.read_text()) if RECORD_PATH.exists() else {}
    record[key] = payload
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")


def native_resolver_kernel():
    """The fastest registered kernel carrying a native window resolver."""
    for name in ("numba", "cext"):
        if name in available_kernels() and get_kernel(name).resolve_windows is not None:
            return get_kernel(name)
    return None


# -- window resolution --------------------------------------------------------

def resolve_workload(seed=3):
    """Afterpulsing-heavy pre-drawn inputs in the production layout.

    Candidate times are absolute (window start + in-window offset, ``inf`` =
    no candidate), dark/background events sit behind CSR bounds, and 70% of
    windows arm an afterpulse trap with a release constant of 1.5 windows —
    so dead time and pending releases couple consecutive windows constantly,
    the regime the speculate-then-correct Python path is weakest in.
    """
    rng = np.random.default_rng(seed)
    shape = (RESOLVE_WINDOWS, RESOLVE_CHANNELS)
    window_starts = np.arange(RESOLVE_WINDOWS)[:, None] * DURATION

    def candidates(probability):
        times = window_starts + rng.uniform(0.0, DURATION, shape)
        times[rng.random(shape) >= probability] = np.inf
        return times

    def sparse_events(mean):
        counts = rng.poisson(mean, shape)
        bounds = np.zeros(shape[0] * shape[1] + 1, dtype=np.int64)
        np.cumsum(counts.ravel(), out=bounds[1:])
        return counts, bounds, rng.uniform(0.0, DURATION, int(bounds[-1]))

    dark_counts, dark_bounds, dark_rel = sparse_events(0.03)
    background_counts, background_bounds, background_rel = sparse_events(0.03)
    return {
        "primary": candidates(0.8),
        "secondary": [candidates(0.25) for _ in range(SECONDARIES)],
        "dark_counts": dark_counts,
        "dark_bounds": dark_bounds,
        "dark_rel": dark_rel,
        "background_counts": background_counts,
        "background_bounds": background_bounds,
        "background_rel": background_rel,
        "trap_filled": rng.random(shape) < 0.7,
        "trap_release": rng.exponential(1.5 * DURATION, shape),
    }


def run_resolve_comparison(kernel):
    """Resolve one workload on both paths; returns (python_s, native_s)."""
    load = resolve_workload()
    start = time.perf_counter()
    python_times, python_origins = _resolve_windows_fast(
        load["primary"], load["secondary"],
        load["dark_counts"], load["dark_bounds"], load["dark_rel"],
        load["background_counts"], load["background_bounds"], load["background_rel"],
        load["trap_filled"], load["trap_release"],
        DEAD_TIME, GATE_RECOVERY, DURATION, 0.0,
    )
    python_elapsed = time.perf_counter() - start

    stacked = np.stack(load["secondary"])
    start = time.perf_counter()
    native_times, native_origins = kernel.resolve_windows(
        load["primary"], stacked,
        load["dark_rel"], load["dark_bounds"],
        load["background_rel"], load["background_bounds"],
        load["trap_filled"], load["trap_release"],
        DEAD_TIME, GATE_RECOVERY, DURATION, 0.0,
    )
    native_elapsed = time.perf_counter() - start

    # Bit-identity first: a fast wrong answer is not a speedup.
    assert np.array_equal(native_times, python_times, equal_nan=True)
    assert np.array_equal(native_origins, python_origins)
    return python_elapsed, native_elapsed


def test_resolver_kernel_speedup(benchmark):
    kernel = native_resolver_kernel()
    if kernel is None:
        import pytest

        pytest.skip("no native resolver kernel in this environment")
    python_elapsed, native_elapsed = benchmark.pedantic(
        run_resolve_comparison, args=(kernel,), rounds=1, iterations=1, warmup_rounds=1
    )
    windows = RESOLVE_WINDOWS * RESOLVE_CHANNELS
    speedup = python_elapsed / native_elapsed
    _update_record("resolver", {
        "workload": {
            "windows": RESOLVE_WINDOWS,
            "channels": RESOLVE_CHANNELS,
            "secondaries": SECONDARIES,
            "trap_fill_probability": 0.7,
            "window_duration_s": DURATION,
            "dead_time_s": DEAD_TIME,
        },
        "python_fast_path": {
            "seconds": python_elapsed,
            "windows_per_sec": windows / python_elapsed,
        },
        "native_kernel": {
            "name": kernel.name,
            "seconds": native_elapsed,
            "windows_per_sec": windows / native_elapsed,
        },
        "speedup": speedup,
    })

    report = TextReport(
        "RESOLVER KERNEL",
        f"native '{kernel.name}' window resolution vs. the Python fast path",
        paper_claim="SPAD arrays whose dead time and afterpulsing shape the "
                    "achievable optical link BER",
    )
    table = ReportTable(columns=["path", "wall time", "windows/sec"])
    table.add_row(
        "python fast path", f"{python_elapsed:.3f} s",
        format_si(windows / python_elapsed, "win/s"),
    )
    table.add_row(
        f"{kernel.name} kernel", f"{native_elapsed:.3f} s",
        format_si(windows / native_elapsed, "win/s"),
    )
    report.add_table(
        table,
        caption=f"{RESOLVE_WINDOWS} windows x {RESOLVE_CHANNELS} channels, "
                f"afterpulsing-heavy (70% trap fill), bit-identical outputs",
    )
    report.add_comparison("resolver kernel speedup", ">=5x", f"{speedup:.1f}x")
    print()
    print(report.render())
    print(f"perf record written to {RECORD_PATH}")

    assert speedup >= 5.0


# -- arbitration scheduling ---------------------------------------------------

def arbiter_workload(seed=5):
    """A saturated request tape: (node, cost, arrival) per request."""
    rng = np.random.default_rng(seed)
    node_of = rng.integers(0, ARBITER_NODES, ARBITER_REQUESTS)
    costs = rng.integers(1, 5, ARBITER_REQUESTS).astype(np.int64)
    # Arrivals creep forward far slower than service: the bus stays
    # saturated, the regime where the per-slot grant loop dominates runtime.
    increments = np.where(
        rng.random(ARBITER_REQUESTS) < 0.1,
        rng.integers(1, 3, ARBITER_REQUESTS),
        0,
    )
    return node_of, costs, increments


def loaded_arbiter(node_of, increments):
    arbiter = RoundRobinArbiter(ARBITER_NODES)
    floor = [0] * ARBITER_NODES
    for item, node in enumerate(node_of.tolist()):
        floor[node] += int(increments[item])
        arbiter.request(node, item, arrival=floor[node])
    return arbiter


def scalar_drain(arbiter, costs):
    """The per-slot grant loop OpticalBus.run executes without a kernel."""
    granted, starts = [], []
    slot = 0
    while slot < ARBITER_HORIZON:
        grant = arbiter.grant(slot)
        if grant is None:
            next_arrival = arbiter.next_arrival()
            if next_arrival is None or next_arrival >= ARBITER_HORIZON:
                break
            slot = max(slot + 1, next_arrival)
        else:
            _, item = grant
            granted.append(item)
            starts.append(slot)
            slot += int(costs[item])
    return np.asarray(granted, dtype=np.int64), np.asarray(starts, dtype=np.int64), slot


def vector_drain(arbiter, costs, arbitrate):
    """The kernel path: snapshot once, schedule everything, commit."""
    arrivals, items, bounds = arbiter.snapshot()
    item_ids = np.asarray(items, dtype=np.int64)
    granted, starts, final_slot, final_rotation = arbitrate(
        arrivals, costs[item_ids], bounds, arbiter.next_node, 0, ARBITER_HORIZON
    )
    granted_nodes = np.searchsorted(bounds, granted, side="right") - 1
    arbiter.commit_grants(
        np.bincount(granted_nodes, minlength=arbiter.node_count), final_rotation
    )
    return item_ids[granted], starts, final_slot


def run_arbitration_comparison():
    node_of, costs, increments = arbiter_workload()
    arbitrate = get_kernel("auto").arbitrate or round_robin_schedule

    arbiter = loaded_arbiter(node_of, increments)
    start = time.perf_counter()
    scalar_items, scalar_starts, scalar_slot = scalar_drain(arbiter, costs)
    scalar_elapsed = time.perf_counter() - start
    assert arbiter.pending_count() == 0

    arbiter = loaded_arbiter(node_of, increments)
    start = time.perf_counter()
    vector_items, vector_starts, vector_slot = vector_drain(arbiter, costs, arbitrate)
    vector_elapsed = time.perf_counter() - start
    assert arbiter.pending_count() == 0

    # Same grants in the same order at the same slots: the schedule is part
    # of the bit-identity contract, not just a throughput trick.
    assert np.array_equal(vector_items, scalar_items)
    assert np.array_equal(vector_starts, scalar_starts)
    assert vector_slot == scalar_slot
    return scalar_elapsed, vector_elapsed, scalar_slot


def test_arbitration_schedule_speedup(benchmark):
    scalar_elapsed, vector_elapsed, slots = benchmark.pedantic(
        run_arbitration_comparison, rounds=1, iterations=1, warmup_rounds=1
    )
    scalar_rate = slots / scalar_elapsed
    vector_rate = slots / vector_elapsed
    speedup = vector_rate / scalar_rate
    kernel_name = get_kernel("auto").name if get_kernel("auto").arbitrate else "vector"
    _update_record("arbitration", {
        "workload": {
            "requests": ARBITER_REQUESTS,
            "nodes": ARBITER_NODES,
            "slots": slots,
            "slot_costs": "uniform 1..4",
            "traffic": "saturated (arrivals far behind service)",
        },
        "scalar_grant_loop": {
            "seconds": scalar_elapsed,
            "slots_per_sec": scalar_rate,
        },
        "scheduled_kernel": {
            "name": kernel_name,
            "seconds": vector_elapsed,
            "slots_per_sec": vector_rate,
        },
        "speedup": speedup,
    })

    report = TextReport(
        "ARBITRATION SCHEDULE",
        "vectorised speculate-and-commit schedule vs. the per-slot grant loop",
        paper_claim="an entirely optical through-chip bus serialising "
                    "hundreds of stacked dies through slotted arbitration",
    )
    table = ReportTable(columns=["path", "wall time", "slots/sec"])
    table.add_row(
        "per-slot grant loop", f"{scalar_elapsed:.3f} s",
        format_si(scalar_rate, "slot/s"),
    )
    table.add_row(
        f"schedule ({kernel_name})", f"{vector_elapsed:.3f} s",
        format_si(vector_rate, "slot/s"),
    )
    report.add_table(
        table,
        caption=f"{ARBITER_REQUESTS:,} requests over {ARBITER_NODES} nodes, "
                f"{slots:,} slots, identical grants/starts on both paths",
    )
    report.add_comparison("arbitration speedup", ">=5x slots/sec", f"{speedup:.1f}x")
    print()
    print(report.render())
    print(f"perf record written to {RECORD_PATH}")

    assert speedup >= 5.0


if __name__ == "__main__":
    kernel = native_resolver_kernel()
    if kernel is not None:
        run_resolve_comparison(kernel)  # warm-up (imports, JIT, caches)
        python_elapsed, native_elapsed = run_resolve_comparison(kernel)
        print(
            f"resolver: python {python_elapsed:.3f} s  "
            f"{kernel.name} {native_elapsed:.3f} s  "
            f"speedup {python_elapsed / native_elapsed:.1f}x"
        )
    else:
        print("resolver: no native kernel in this environment, skipped")
    run_arbitration_comparison()  # warm-up
    scalar_elapsed, vector_elapsed, slots = run_arbitration_comparison()
    print(
        f"arbitration: scalar {slots / scalar_elapsed:,.0f} slots/s  "
        f"scheduled {slots / vector_elapsed:,.0f} slots/s  "
        f"speedup {scalar_elapsed / vector_elapsed:.1f}x"
    )
