"""Optical clock distribution (the paper's future-work extension).

The conclusions announce ongoing work on "high-speed local clock
synchronization, expected to drastically reduce clock distribution power costs
with minimal or no area impact".  The model here makes that comparison
concrete: a conventional buffered H-tree clock network (whose power is
dominated by charging the distributed wire and sink capacitance every cycle)
versus a single modulated optical emitter broadcast to per-region SPAD
receivers that regenerate the clock locally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.analysis.units import MHZ, MM
from repro.photonics.driver import LedDriver
from repro.spad.quenching import QuenchingCircuit


@dataclass(frozen=True)
class ElectricalClockTree:
    """First-order H-tree clock distribution model.

    Attributes
    ----------
    die_size:
        Die edge length [m].
    levels:
        Number of H-tree levels (the tree has ``4**levels`` leaf regions).
    wire_capacitance_per_meter:
        Clock-wire capacitance per metre [F/m].
    sink_capacitance:
        Total clocked-sink (flip-flop clock pin) capacitance [F].
    supply_voltage:
        Clock swing [V].
    buffer_overhead:
        Extra switched capacitance contributed by repeaters, as a fraction of
        the wire capacitance.
    """

    die_size: float = 10.0 * MM
    levels: int = 5
    wire_capacitance_per_meter: float = 200e-12
    sink_capacitance: float = 500e-12
    supply_voltage: float = 1.0
    buffer_overhead: float = 0.5

    def __post_init__(self) -> None:
        if self.die_size <= 0:
            raise ValueError("die_size must be positive")
        if self.levels <= 0:
            raise ValueError("levels must be positive")
        if self.sink_capacitance < 0 or self.wire_capacitance_per_meter < 0:
            raise ValueError("capacitances must be non-negative")

    def total_wire_length(self) -> float:
        """Total H-tree wire length [m]."""
        length = 0.0
        segment = self.die_size / 2.0
        branches = 1
        for _ in range(self.levels):
            length += branches * segment
            branches *= 4
            segment /= 2.0
        return length

    def switched_capacitance(self) -> float:
        """Capacitance charged every clock cycle [F]."""
        wire = self.total_wire_length() * self.wire_capacitance_per_meter
        return wire * (1.0 + self.buffer_overhead) + self.sink_capacitance

    def power(self, frequency: float) -> float:
        """Dynamic clock distribution power at ``frequency`` [W]."""
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        return self.switched_capacitance() * self.supply_voltage ** 2 * frequency


@dataclass(frozen=True)
class OpticalClockDistribution:
    """Optical broadcast clock: one emitter, many SPAD-based local receivers.

    Attributes
    ----------
    regions:
        Number of independently clocked regions, each with its own SPAD
        receiver and local regeneration (a small local buffer tree is still
        charged electrically, captured by ``local_capacitance``).
    local_capacitance:
        Clocked capacitance regenerated locally within one region [F].
    supply_voltage:
        Local regeneration swing [V].
    photons_per_edge:
        Mean photons that must reach each receiver per clock edge for reliable
        detection.
    """

    regions: int = 64
    local_capacitance: float = 2e-12
    supply_voltage: float = 1.0
    photons_per_edge: float = 30.0
    emitter_driver: LedDriver = LedDriver()
    receiver_quenching: QuenchingCircuit = QuenchingCircuit(dead_time=2e-9)

    def __post_init__(self) -> None:
        if self.regions <= 0:
            raise ValueError("regions must be positive")
        if self.local_capacitance < 0:
            raise ValueError("local_capacitance must be non-negative")
        if self.photons_per_edge <= 0:
            raise ValueError("photons_per_edge must be positive")

    def receiver_power(self, frequency: float) -> float:
        """Power of all SPAD receivers + local regeneration at ``frequency`` [W]."""
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        quench = self.receiver_quenching.energy_per_detection() * frequency
        local = self.local_capacitance * self.supply_voltage ** 2 * frequency
        return self.regions * (quench + local)

    def emitter_power(self, frequency: float, drive_current: float = 5e-3,
                      pulse_width: float = 200e-12) -> float:
        """Power of the single broadcast emitter at ``frequency`` [W]."""
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        return self.emitter_driver.average_power(drive_current, pulse_width, frequency)

    def power(self, frequency: float) -> float:
        """Total optical clock distribution power [W]."""
        return self.emitter_power(frequency) + self.receiver_power(frequency)

    def skew_bound(self, jitter_sigma: float = 80e-12) -> float:
        """Worst-case region-to-region skew, 3 sigma of the receiver jitter [s].

        Optical broadcast has no systematic wire-length skew; what remains is
        the uncorrelated detection jitter of each region's SPAD.
        """
        if jitter_sigma < 0:
            raise ValueError("jitter_sigma must be non-negative")
        return 6.0 * jitter_sigma  # +/- 3 sigma between two regions


@dataclass(frozen=True)
class ClockDistributionComparison:
    """Electrical-vs-optical clock distribution figures at one frequency."""

    frequency: float
    electrical_power: float
    optical_power: float

    @property
    def power_saving(self) -> float:
        """Fraction of the electrical clock power saved by going optical."""
        if self.electrical_power <= 0:
            raise ValueError("electrical_power must be positive")
        return 1.0 - self.optical_power / self.electrical_power

    def as_dict(self) -> Dict[str, float]:
        return {
            "frequency_hz": self.frequency,
            "electrical_power_w": self.electrical_power,
            "optical_power_w": self.optical_power,
            "power_saving_fraction": self.power_saving,
        }


def compare_clock_distribution(
    frequency: float = 200 * MHZ,
    tree: ElectricalClockTree = ElectricalClockTree(),
    optical: OpticalClockDistribution = OpticalClockDistribution(),
) -> ClockDistributionComparison:
    """Evaluate both clock distribution styles at ``frequency``."""
    return ClockDistributionComparison(
        frequency=frequency,
        electrical_power=tree.power(frequency),
        optical_power=optical.power(frequency),
    )
