"""Tier-1 CLI tests: the ``python -m repro`` front door stays drivable.

Most tests call :func:`repro.cli.main` in-process (fast, assertable); one
smoke test runs the real ``python -m repro`` subprocess end to end and checks
that it exits 0 and leaves a loadable artefact behind — the contract the
README quickstart sells.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import EXIT_CORRUPT_ARTIFACT, main
from repro.scenarios import ExperimentRunner, ReportStore, get_scenario

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
SCRIPTS = REPO_ROOT / "scripts"


def run_cli(*argv):
    return main(list(argv))


class TestList:
    def test_lists_every_named_scenario(self, capsys):
        assert run_cli("list") == 0
        out = capsys.readouterr().out
        for name in ("ber-vs-photons", "design-space-grid", "spad-array-imager"):
            assert name in out

    def test_json_catalogue(self, capsys):
        assert run_cli("list", "--json") == 0
        catalogue = json.loads(capsys.readouterr().out)
        entry = {item["name"]: item for item in catalogue}["design-space-grid"]
        assert entry["points"] == 9
        assert entry["backend"] == "batch"


class TestRun:
    def test_run_streams_progress_and_stores_artifact(self, capsys, tmp_path):
        store_dir = tmp_path / "artifacts"
        code = run_cli(
            "run", "ber-vs-photons", "--bits", "256", "--seed", "3",
            "--store", str(store_dir),
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "scenario 'ber-vs-photons'" in captured.out
        assert "[6/6]" in captured.err
        assert "artefact:" in captured.err
        store = ReportStore(store_dir)
        (artifact,) = store.list()
        loaded = store.load(artifact)
        # The artefact is exactly the API run with the same inputs.
        expected = ExperimentRunner(
            get_scenario("ber-vs-photons").with_budget(256), seed=3
        ).run()
        assert loaded.to_mapping() == expected.to_mapping()

    def test_json_output_is_the_report_mapping(self, capsys, tmp_path):
        code = run_cli(
            "run", "ber-vs-photons", "--bits", "256", "--quiet", "--json",
            "--no-store", "--store", str(tmp_path),
        )
        assert code == 0
        mapping = json.loads(capsys.readouterr().out)
        assert mapping["scenario"]["name"] == "ber-vs-photons"
        assert len(mapping["points"]) == 6
        assert list(tmp_path.glob("*.json")) == []  # --no-store honoured

    def test_process_executor_matches_serial_run(self, capsys, tmp_path):
        common = ("run", "design-space-grid", "--bits", "128", "--quiet", "--json", "--no-store")
        assert run_cli(*common) == 0
        serial = json.loads(capsys.readouterr().out)
        assert run_cli(*common, "--executor", "process", "--workers", "2") == 0
        process = json.loads(capsys.readouterr().out)
        assert serial == process

    def test_run_file_executes_an_unregistered_scenario(self, capsys, tmp_path):
        mapping = {
            "name": "custom-from-file",
            "description": "scenario mapping straight from disk",
            "link_overrides": {"ppm_bits": 4, "mean_detected_photons": 40.0},
            "sweep_axes": {"spad_dead_time": [16e-9, 48e-9]},
            "metrics": ["ber", "detection_rate"],
            "bits_per_point": 128,
        }
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(mapping))
        store_dir = tmp_path / "store"
        assert run_cli("run", "--file", str(path), "--store", str(store_dir), "--quiet") == 0
        assert "custom-from-file" in capsys.readouterr().out
        (artifact,) = ReportStore(store_dir).list()
        assert artifact.startswith("custom-from-file__batch__seed0__")

    def test_run_file_accepts_a_stored_artifact(self, capsys, tmp_path):
        # An earlier run's artefact is itself a runnable scenario file.
        store_dir = tmp_path / "store"
        assert run_cli(
            "run", "ber-vs-photons", "--bits", "128", "--store", str(store_dir), "--quiet"
        ) == 0
        store = ReportStore(store_dir)
        artifact_path = store_dir / f"{store.list()[0]}.json"
        capsys.readouterr()
        assert run_cli("run", "--file", str(artifact_path), "--no-store", "--quiet") == 0
        assert "ber-vs-photons" in capsys.readouterr().out

    def test_run_requires_exactly_one_source(self, capsys, tmp_path):
        assert run_cli("run") == 1
        assert "exactly one" in capsys.readouterr().err
        path = tmp_path / "s.json"
        path.write_text("{}")
        assert run_cli("run", "ber-vs-photons", "--file", str(path)) == 1
        assert "exactly one" in capsys.readouterr().err

    def test_run_file_rejects_bad_json_and_bad_mappings(self, capsys, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert run_cli("run", "--file", str(path)) == 1
        assert "not valid JSON" in capsys.readouterr().err
        path.write_text(json.dumps({"name": "x", "metrics": ["no-such-metric"]}))
        assert run_cli("run", "--file", str(path)) == 1
        assert "unknown metric" in capsys.readouterr().err

    def test_unknown_scenario_exits_1_with_message(self, capsys):
        assert run_cli("run", "no-such-scenario") == 1
        assert "unknown scenario" in capsys.readouterr().err


class TestShowAndCompare:
    @pytest.fixture()
    def stored(self, tmp_path, capsys):
        store_dir = str(tmp_path)
        run_cli("run", "ber-vs-photons", "--bits", "256", "--seed", "1",
                "--quiet", "--store", store_dir)
        run_cli("run", "ber-vs-photons", "--bits", "256", "--seed", "2",
                "--quiet", "--store", store_dir)
        capsys.readouterr()
        return store_dir, ReportStore(store_dir).list()

    def test_show_prints_summary_and_json(self, stored, capsys):
        store_dir, (first, _second) = stored
        assert run_cli("show", first, "--store", store_dir) == 0
        assert "scenario 'ber-vs-photons'" in capsys.readouterr().out
        assert run_cli("show", first, "--store", store_dir, "--json") == 0
        assert json.loads(capsys.readouterr().out)["seed"] in (1, 2)

    def test_show_missing_artifact_exits_1(self, stored, capsys):
        store_dir, _ = stored
        assert run_cli("show", "missing", "--store", store_dir) == 1
        assert "no artefact" in capsys.readouterr().err

    def test_compare_diffs_a_metric(self, stored, capsys):
        store_dir, (first, second) = stored
        assert run_cli(
            "compare", first, second, "--metric", "ber", "--store", store_dir, "--json"
        ) == 0
        comparison = json.loads(capsys.readouterr().out)
        assert comparison["metric"] == "ber"
        assert len(comparison["points"]) == 6


class TestTypedErrorExitCodes:
    """The new error contract: 1 = domain error, 3 = corrupt artefact."""

    @pytest.fixture()
    def corrupt_store(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        run_cli("run", "ber-vs-photons", "--bits", "128", "--quiet",
                "--store", str(store_dir))
        capsys.readouterr()
        store = ReportStore(store_dir)
        (artifact,) = store.list()
        path = store_dir / f"{artifact}.json"
        envelope = json.loads(path.read_text())
        envelope["report"]["seed"] = 777  # digest no longer matches the id
        path.write_text(json.dumps(envelope))
        return store_dir, artifact

    def test_show_maps_corruption_to_exit_3(self, corrupt_store, capsys):
        store_dir, artifact = corrupt_store
        assert run_cli("show", artifact, "--store", str(store_dir)) == EXIT_CORRUPT_ARTIFACT
        err = capsys.readouterr().err
        assert "digest verification" in err
        assert "quarantine" in err  # the actionable hint

    def test_compare_maps_corruption_to_exit_3(self, corrupt_store, capsys):
        store_dir, artifact = corrupt_store
        code = run_cli("compare", artifact, artifact, "--metric", "ber",
                       "--store", str(store_dir))
        assert code == EXIT_CORRUPT_ARTIFACT
        assert "error:" in capsys.readouterr().err

    def test_truncated_artifact_also_exits_3(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        run_cli("run", "ber-vs-photons", "--bits", "128", "--quiet",
                "--store", str(store_dir))
        capsys.readouterr()
        (artifact,) = ReportStore(store_dir).list()
        path = store_dir / f"{artifact}.json"
        path.write_text(path.read_text()[:50])
        assert run_cli("show", artifact, "--store", str(store_dir)) == EXIT_CORRUPT_ARTIFACT
        assert "not valid JSON" in capsys.readouterr().err

    def test_missing_artifact_stays_exit_1(self, tmp_path, capsys):
        assert run_cli("show", "missing", "--store", str(tmp_path)) == 1
        assert "no artefact" in capsys.readouterr().err


class TestRetryAndResumeFlags:
    def test_retry_flags_need_retry(self, capsys):
        assert run_cli("run", "ber-vs-photons", "--retry-timeout", "5",
                       "--no-store") == 1
        assert "--retry" in capsys.readouterr().err

    def test_resume_conflicts_with_no_store(self, capsys):
        assert run_cli("run", "ber-vs-photons", "--resume", "--no-store") == 1
        assert "--no-store" in capsys.readouterr().err

    def test_retried_run_is_bit_identical_to_a_plain_one(self, capsys, tmp_path):
        common = ("run", "ber-vs-photons", "--bits", "128", "--quiet",
                  "--json", "--no-store")
        assert run_cli(*common) == 0
        plain = json.loads(capsys.readouterr().out)
        assert run_cli(*common, "--retry", "3", "--retry-backoff", "0.001") == 0
        retried = json.loads(capsys.readouterr().out)
        assert retried == plain

    def test_resume_reevaluates_only_the_missing_points(self, capsys, tmp_path, monkeypatch):
        from repro.scenarios import ChaosSchedule
        from repro.scenarios.executors import make_point_tasks
        from repro.scenarios.faults import CHAOS_ENV
        from repro.simulation.randomness import split_seed

        store_dir = tmp_path / "store"
        scenario = get_scenario("ber-vs-photons").with_budget(128)

        # Baseline: the uninterrupted run's artefact id.
        assert run_cli("run", "ber-vs-photons", "--bits", "128", "--seed", "3",
                       "--quiet", "--store", str(store_dir)) == 0
        capsys.readouterr()
        (expected,) = ReportStore(store_dir).list()
        (store_dir / f"{expected}.json").unlink()

        # Find a chaos seed whose schedule lets the first two points through
        # serially and then crashes a later one — a deterministic mid-flight
        # kill (fail_fast, no retry, so the run aborts with points 0..k-1
        # already checkpointed).
        tasks = make_point_tasks(scenario, seed=3, backend="batch", chunk_symbols=8_192)
        keys = [split_seed(t.seed, f"chaos-point:{t.index}") for t in tasks]
        chaos_seed = None
        for candidate in range(200):
            schedule = ChaosSchedule(seed=candidate, crash_rate=0.3,
                                     max_faulty_attempts=99)
            faults = [schedule.fault_for(k, 1) for k in keys]
            if faults[0] is None and faults[1] is None and "crash" in faults[2:]:
                chaos_seed = candidate
                break
        assert chaos_seed is not None
        schedule = ChaosSchedule(seed=chaos_seed, crash_rate=0.3, max_faulty_attempts=99)
        first_crash = [schedule.fault_for(k, 1) for k in keys].index("crash")

        monkeypatch.setenv(CHAOS_ENV, json.dumps(schedule.to_mapping()))
        from repro.scenarios.faults import InjectedWorkerCrash

        with pytest.raises(InjectedWorkerCrash):
            run_cli("run", "ber-vs-photons", "--bits", "128", "--seed", "3",
                    "--store", str(store_dir))
        monkeypatch.delenv(CHAOS_ENV)
        captured = capsys.readouterr()
        assert f"[{first_crash}/6]" in captured.err  # progress up to the kill
        assert ReportStore(store_dir).list() == []  # no artefact yet

        # --resume completes the run, re-evaluating only the missing points.
        assert run_cli("run", "ber-vs-photons", "--bits", "128", "--seed", "3",
                       "--store", str(store_dir), "--resume") == 0
        captured = capsys.readouterr()
        assert f"resuming: {first_crash} of 6 point(s) restored" in captured.err
        assert f"[{first_crash + 1}/6]" in captured.err
        assert "[6/6]" in captured.err
        # The final artefact digest equals the uninterrupted run's.
        assert ReportStore(store_dir).list() == [expected]

    def test_failure_policy_continue_reports_failures(self, capsys, tmp_path, monkeypatch):
        from repro.scenarios import ChaosSchedule
        from repro.scenarios.faults import CHAOS_ENV

        schedule = ChaosSchedule(seed=1, crash_rate=1.0, max_faulty_attempts=99)
        monkeypatch.setenv(CHAOS_ENV, json.dumps(schedule.to_mapping()))
        assert run_cli("run", "ber-vs-photons", "--bits", "128", "--no-store",
                       "--json", "--failure-policy", "continue") == 0
        captured = capsys.readouterr()
        mapping = json.loads(captured.out)
        assert len(mapping["failures"]) == 6 and mapping["points"] == []
        assert "FAILED" in captured.err


class TestRegressionCheckExitCodes:
    @pytest.fixture()
    def gate(self):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "regression_check", SCRIPTS / "regression_check.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_missing_reference_exits_3_with_guidance(self, gate, tmp_path, capsys):
        gate.REFERENCE_DIR = tmp_path / "nowhere"
        assert gate.main([]) == gate.EXIT_BAD_REFERENCE == 3
        err = capsys.readouterr().err
        assert "no committed reference artefact" in err
        assert "regenerate it with" in err

    def test_unreadable_reference_exits_3(self, gate, tmp_path, capsys):
        gate.REFERENCE_DIR = tmp_path
        bogus = tmp_path / "ber-vs-photons__batch__seed1__000000000000.json"
        bogus.write_text("{truncated")
        assert gate.main([]) == 3
        assert "unreadable" in capsys.readouterr().err


@pytest.mark.scenario_smoke
def test_python_dash_m_repro_smoke(tmp_path):
    """`python -m repro run ber-vs-photons --bits 2048` exits 0, stores an artefact."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "run", "ber-vs-photons", "--bits", "2048"],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr
    assert "scenario 'ber-vs-photons'" in completed.stdout
    # The default store directory is ./artifacts relative to the cwd.
    store = ReportStore(tmp_path / "artifacts")
    (artifact,) = store.list()
    report = store.load(artifact)
    assert report.name == "ber-vs-photons"
    assert report.total_bits == 6 * 2048


class TestProbe:
    """`repro probe` — the pre-run cache probe and its exit-code contract."""

    def test_miss_then_run_then_hit(self, capsys, tmp_path):
        store = str(tmp_path / "artifacts")
        args = ("probe", "ber-vs-photons", "--seed", "7", "--bits", "128",
                "--store", store)
        assert run_cli(*args) == 4  # EXIT_CACHE_MISS: nothing simulated yet
        out = capsys.readouterr().out
        assert out.startswith("PENDING run ")
        assert run_cli("run", "ber-vs-photons", "--seed", "7", "--bits", "128",
                       "--quiet", "--store", store) == 0
        capsys.readouterr()
        assert run_cli(*args) == 0  # same inputs now probe as a hit
        out = capsys.readouterr().out
        assert out.startswith("HIT ")
        artifact = out.split()[1]
        assert ReportStore(store).load(artifact) is not None

    def test_json_payload_is_the_shared_probe_shape(self, capsys, tmp_path):
        from repro import frontdoor
        from repro.scenarios.store import run_digest

        store = str(tmp_path / "artifacts")
        assert run_cli("probe", "ber-vs-photons", "--seed", "7", "--bits", "128",
                       "--store", store, "--json") == 4
        payload = json.loads(capsys.readouterr().out)
        request = frontdoor.RunRequest.build("ber-vs-photons", seed=7, bits=128)
        assert payload == frontdoor.probe(ReportStore(store), request)
        assert payload["state"] == "pending" and payload["artifact"] is None
        assert payload["run"] == run_digest(
            request.scenario, request.backend, 7, request.chunk_symbols
        )

    def test_probe_is_sensitive_to_every_run_input(self, capsys, tmp_path):
        store = str(tmp_path / "artifacts")
        assert run_cli("run", "ber-vs-photons", "--seed", "7", "--bits", "128",
                       "--quiet", "--store", store) == 0
        capsys.readouterr()
        base = ("ber-vs-photons", "--bits", "128", "--store", store)
        assert run_cli("probe", *base, "--seed", "7") == 0
        assert run_cli("probe", *base, "--seed", "8") == 4
        assert run_cli("probe", *base, "--seed", "7", "--chunk-symbols", "4096") == 4
        assert run_cli("probe", "ber-vs-photons", "--bits", "256", "--seed", "7",
                       "--store", store) == 4

    def test_probe_never_creates_artifacts(self, capsys, tmp_path):
        store = tmp_path / "artifacts"
        assert run_cli("probe", "ber-vs-photons", "--store", str(store)) == 4
        assert not any(store.rglob("*.json")) if store.exists() else True

    def test_probe_usage_errors(self, capsys, tmp_path):
        assert run_cli("probe", "no-such-scenario") == 1
        assert "unknown scenario" in capsys.readouterr().err
        assert run_cli("probe") == 1  # no source at all
        assert "exactly one" in capsys.readouterr().err


class TestServe:
    def test_occupied_port_exits_4_with_typed_error(self, capsys, tmp_path):
        import socket

        from repro.cli import EXIT_PORT_BIND

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            code = run_cli("serve", "--port", str(port), "--store", str(tmp_path))
        finally:
            blocker.close()
        assert code == EXIT_PORT_BIND == 4
        err = capsys.readouterr().err
        assert "cannot bind" in err and str(port) in err

    def test_list_json_matches_the_service_catalogue(self, capsys):
        from repro import frontdoor

        assert run_cli("list", "--json") == 0
        assert json.loads(capsys.readouterr().out) == frontdoor.scenario_catalogue()
