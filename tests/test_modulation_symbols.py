"""Tests for repro.modulation.symbols and ppm."""

import numpy as np
import pytest

from repro.analysis.units import NS, PS
from repro.modulation.ppm import PpmCodec
from repro.modulation.symbols import SlotGrid, bits_to_int, int_to_bits


class TestBitHelpers:
    def test_roundtrip(self):
        for value in range(64):
            assert bits_to_int(int_to_bits(value, 6)) == value

    def test_big_endian_order(self):
        assert int_to_bits(1, 4) == [0, 0, 0, 1]
        assert bits_to_int([1, 0, 0, 0]) == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)
        with pytest.raises(ValueError):
            int_to_bits(0, 0)
        with pytest.raises(ValueError):
            bits_to_int([])
        with pytest.raises(ValueError):
            bits_to_int([0, 2])


class TestSlotGrid:
    def test_paper_parameterisation(self):
        """K bits -> 2^K slots; R = data window + guard."""
        grid = SlotGrid(bits_per_symbol=4, slot_duration=500 * PS, guard_time=24 * NS)
        assert grid.slot_count == 16
        assert grid.data_window == pytest.approx(8 * NS)
        assert grid.symbol_duration == pytest.approx(32 * NS)
        assert grid.raw_bit_rate == pytest.approx(4 / 32e-9)

    def test_slot_times(self):
        grid = SlotGrid(bits_per_symbol=2, slot_duration=1 * NS)
        assert grid.slot_start(2) == pytest.approx(2 * NS)
        assert grid.slot_center(0) == pytest.approx(0.5 * NS)
        with pytest.raises(ValueError):
            grid.slot_start(4)

    def test_slot_of_time(self):
        grid = SlotGrid(bits_per_symbol=2, slot_duration=1 * NS, guard_time=2 * NS)
        assert grid.slot_of_time(0.0) == 0
        assert grid.slot_of_time(3.5 * NS) == 3
        assert grid.slot_of_time(5 * NS) == 3  # guard maps to the last slot
        with pytest.raises(ValueError):
            grid.slot_of_time(6 * NS)
        with pytest.raises(ValueError):
            grid.slot_of_time(-1.0)

    def test_with_guard(self):
        grid = SlotGrid(bits_per_symbol=2, slot_duration=1 * NS)
        assert grid.with_guard(5 * NS).guard_time == pytest.approx(5 * NS)

    def test_validation(self):
        with pytest.raises(ValueError):
            SlotGrid(bits_per_symbol=0, slot_duration=1 * NS)
        with pytest.raises(ValueError):
            SlotGrid(bits_per_symbol=2, slot_duration=0.0)
        with pytest.raises(ValueError):
            SlotGrid(bits_per_symbol=2, slot_duration=1 * NS, guard_time=-1.0)


class TestPpmCodec:
    @pytest.fixture
    def codec(self):
        return PpmCodec(SlotGrid(bits_per_symbol=3, slot_duration=1 * NS, guard_time=4 * NS))

    def test_encode_value_maps_to_slot_center(self, codec):
        symbol = codec.encode_value(5)
        assert symbol.slot == 5
        assert symbol.pulse_time == pytest.approx(5.5 * NS)
        with pytest.raises(ValueError):
            codec.encode_value(8)

    def test_encode_decode_roundtrip_all_values(self, codec):
        for value in range(8):
            symbol = codec.encode_value(value)
            assert codec.decode_time(symbol.pulse_time) == value

    def test_encode_bits_groups_of_k(self, codec):
        symbols = codec.encode_bits([0, 0, 1, 1, 1, 1])
        assert [s.value for s in symbols] == [1, 7]
        with pytest.raises(ValueError):
            codec.encode_bits([0, 1])  # not a multiple of K=3
        with pytest.raises(ValueError):
            codec.encode_bits([])

    def test_pulse_schedule_spacing(self, codec):
        schedule = codec.pulse_schedule([0, 0, 0, 0, 0, 0])
        # Two symbols, both slot 0: pulses separated by one symbol duration.
        assert schedule[1] - schedule[0] == pytest.approx(codec.grid.symbol_duration)

    def test_decode_stream_with_erasure(self, codec):
        bits = codec.decode_stream([codec.encode_value(6).pulse_time, None])
        assert bits[:3] == [1, 1, 0]
        assert bits[3:] == [0, 0, 0]

    def test_bit_mapping_distance_metrics(self, codec):
        matrix = codec.hamming_distance_matrix()
        assert matrix.shape == (8, 8)
        assert matrix[0, 0] == 0
        assert matrix[0, 7] == 3
        assert codec.expected_bit_errors_per_symbol_error() > 1.0
        assert codec.adjacent_slot_bit_errors() <= codec.expected_bit_errors_per_symbol_error() + 1.0

    def test_symbol_bits_helper(self, codec):
        assert codec.encode_value(5).bits(3) == [1, 0, 1]
