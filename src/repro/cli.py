"""``python -m repro`` — drive the experiment layer without writing Python.

Eight subcommands cover the run/inspect/serve loop:

* ``repro list`` — catalogue the named library scenarios (``--json`` prints
  the shared machine-readable catalogue,
  :func:`repro.frontdoor.scenario_catalogue` — the same payload the service
  serves on ``GET /scenarios``);
* ``repro run <scenario>`` — execute a scenario (choosing backend, executor,
  worker count, seed, per-point bit budget and chunk size), stream per-point
  progress, print the report table and persist the artefact into a
  :class:`~repro.scenarios.store.ReportStore`; ``repro run --file
  scenario.json`` runs a custom scenario mapping
  (:meth:`~repro.scenarios.scenario.Scenario.from_mapping`) — or a stored
  artefact — without registering it;
* ``repro probe <scenario>`` — compute the run's artefact cache key
  (:meth:`~repro.scenarios.store.ReportStore.digest_for`) *without running
  anything* and say whether the store already holds the completed artefact:
  exits 0 on a cache hit, :data:`EXIT_CACHE_MISS` (4) when the run is still
  pending — scripts can gate expensive simulations on it;
* ``repro show <artefact>`` — reload a stored artefact (by id or path) and
  print its report (``--json`` prints the report mapping, the same shape
  the service client's ``report()`` returns);
* ``repro compare <a> <b> --metric ber`` — per-point metric deltas between
  two artefacts, for longitudinal figure tracking;
* ``repro serve`` — boot the :mod:`repro.service` HTTP daemon on the same
  store: completed runs become O(1) cache hits, identical in-flight
  requests coalesce, and progress streams as server-sent events;
* ``repro worker`` — join the distributed fleet: listen for a coordinator
  (``--listen host:port``, port 0 for ephemeral; prints a machine-parseable
  ``worker listening on host:port`` line) or dial one (``--connect``);
* ``repro workers <addrs>`` — probe a fleet's workers and list their status.

Distributed runs reuse the ordinary run surface: ``repro run <scenario>
--executor cluster --workers host:port,host:port`` dispatches chunk tasks
over the fleet — ``--workers`` accepts either a process-pool size (an int)
or cluster worker addresses, and implies the matching executor.

Determinism carries through unchanged: ``repro run`` output is a function of
``(scenario, seed, chunk size)`` only — never of the executor, the worker
count or fleet, and never of how many retries (``--retry``) a faulty
machine needed.
Exit status is 0 on success, 2 for usage errors (argparse), 1 for domain
errors (unknown scenario, missing artefact), 3 for a corrupt artefact
(:class:`~repro.scenarios.store.CorruptArtifactError` — the file exists but
fails digest/format verification), 4 for ``probe`` misses and — typed as
:data:`EXIT_PORT_BIND`, also 4 — a ``serve`` socket that cannot be bound
(:class:`~repro.service.ServiceBindError`); messages go to stderr.

Fault tolerance: ``repro run --retry N [--retry-timeout S]`` retries failing
or hung points deterministically; ``--failure-policy continue`` records
exhausted points in the report instead of aborting; completed points are
checkpointed incrementally whenever the run stores artefacts, so a killed
run resumes with ``repro run ... --resume`` re-evaluating only the missing
points (the final artefact digest equals an uninterrupted run's).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro import frontdoor
from repro.analysis.report import ReportTable
from repro.core.backend import available_backends
from repro.kernels import KERNEL_NAMES
from repro.scenarios import (
    CorruptArtifactError,
    ExperimentRunner,
    ReportStore,
    RetryPolicy,
    available_executors,
)
from repro.scenarios.runner import DEFAULT_CHUNK_SYMBOLS

#: Exit status for artefacts that exist but fail verification — distinct
#: from 1 (domain errors) so calling scripts can trigger quarantine/re-run.
EXIT_CORRUPT_ARTIFACT = 3

#: Exit status of ``repro probe`` when the run has no completed artefact yet
#: — a grep-style "no match", not an error.
EXIT_CACHE_MISS = 4

#: Exit status of ``repro serve`` when the socket cannot be bound (port in
#: use, privileged port): typed so supervisors can tell it from a crash.
EXIT_PORT_BIND = 4

DEFAULT_STORE = "artifacts"

DEFAULT_SERVE_HOST = "127.0.0.1"
DEFAULT_SERVE_PORT = 8765


def _format_parameters(parameters) -> str:
    """One grid point's swept values as a display label."""
    return ", ".join(f"{k}={v}" for k, v in parameters.items()) or "<single point>"


def _status(message: str) -> None:
    """Progress/status line to stderr.

    A consumer that closed stderr (``repro run ... 2>&1 | head``) must cost
    us the progress lines, never the simulation or its artefact.
    """
    try:
        print(message, file=sys.stderr)
    except BrokenPipeError:
        pass


def _workers_arg(value: str):
    """``--workers`` accepts a pool size (int) or cluster addresses.

    ``"4"`` → 4 (process pool); ``"host:port[,host:port…]"`` passes through
    as a string for the cluster executor to parse.  The distinction drives
    executor inference when ``--executor`` is omitted.
    """
    if ":" in value:
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a pool size or host:port addresses, got {value!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run, store and compare the paper's scenario experiments.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    list_cmd = commands.add_parser("list", help="catalogue the named scenarios")
    list_cmd.add_argument("--json", action="store_true", help="machine-readable output")

    run_cmd = commands.add_parser("run", help="execute one scenario (named or from a file)")
    run_cmd.add_argument("scenario", nargs="?", default=None,
                         help="library scenario name (see `list`)")
    run_cmd.add_argument("--file", default=None, metavar="PATH",
                         help="run a scenario from a JSON mapping "
                              "(Scenario.from_mapping; no registration needed)")
    # Not argparse choices=: aliases ("fast", "array") and backends registered
    # at runtime must stay usable, so validation happens in resolve_backend.
    run_cmd.add_argument("--backend", default=None,
                         help=f"link backend override ({', '.join(available_backends())})")
    run_cmd.add_argument("--kernel", default=None, choices=KERNEL_NAMES,
                         help="compute kernel for the hot loops (default: the "
                              "REPRO_KERNEL env var, else auto — the fastest "
                              "available; all kernels are bit-identical)")
    run_cmd.add_argument("--executor", default=None, choices=available_executors(),
                         help="grid-point dispatch (default: serial)")
    run_cmd.add_argument("--workers", type=_workers_arg, default=None,
                         help="process-pool size (implies --executor process) or "
                              "cluster worker addresses host:port,… (implies "
                              "--executor cluster)")
    run_cmd.add_argument("--seed", type=int, default=0, help="root seed (default 0)")
    run_cmd.add_argument("--bits", type=int, default=None,
                         help="payload bits per grid point (default: the scenario's budget)")
    run_cmd.add_argument("--chunk-symbols", type=int, default=DEFAULT_CHUNK_SYMBOLS,
                         help="symbols per Monte-Carlo chunk (fixes the seeding layout)")
    run_cmd.add_argument("--trial-mode", default=None, choices=("naive", "importance"),
                         help="estimator: plain Monte-Carlo (naive, default) or "
                              "importance sampling with likelihood weighting")
    run_cmd.add_argument("--ci-target", type=float, default=None, metavar="HALF_WIDTH",
                         help="adaptive budget: simulate each point until its 95%% "
                              "CI half-width reaches this target")
    run_cmd.add_argument("--max-symbols", type=int, default=None,
                         help="hard per-point symbol cap for --ci-target runs")
    run_cmd.add_argument("--store", default=DEFAULT_STORE,
                         help=f"artefact store directory (default {DEFAULT_STORE!r})")
    run_cmd.add_argument("--no-store", action="store_true",
                         help="do not persist the report artefact")
    run_cmd.add_argument("--json", action="store_true",
                         help="print the report mapping as JSON instead of the table")
    run_cmd.add_argument("--quiet", action="store_true",
                         help="suppress per-point progress lines")
    run_cmd.add_argument("--retry", type=int, default=None, metavar="N",
                         help="attempts per grid point (default 1: no retry)")
    run_cmd.add_argument("--retry-timeout", type=float, default=None, metavar="SECONDS",
                         help="per-attempt wall-clock budget (hung points are "
                              "killed and retried; needs --retry)")
    run_cmd.add_argument("--retry-backoff", type=float, default=None, metavar="SECONDS",
                         help="base delay before a retry, growing exponentially "
                              "with deterministic jitter (needs --retry)")
    run_cmd.add_argument("--failure-policy", default=None,
                         choices=("fail_fast", "continue"),
                         help="what an exhausted point does: abort the run "
                              "(fail_fast, default) or land in the report as a "
                              "structured failure (continue)")
    run_cmd.add_argument("--resume", action="store_true",
                         help="pick up a killed run's checkpoint from the store, "
                              "re-evaluating only the missing points")

    probe_cmd = commands.add_parser(
        "probe",
        help="cache-probe a run (compute its artefact key without running)",
    )
    probe_cmd.add_argument("scenario", nargs="?", default=None,
                           help="library scenario name (see `list`)")
    probe_cmd.add_argument("--file", default=None, metavar="PATH",
                           help="probe a scenario from a JSON mapping instead")
    probe_cmd.add_argument("--backend", default=None,
                           help=f"link backend override ({', '.join(available_backends())})")
    probe_cmd.add_argument("--kernel", default=None, choices=KERNEL_NAMES,
                           help="compute kernel pin (part of the cache key "
                                "when set)")
    probe_cmd.add_argument("--seed", type=int, default=0, help="root seed (default 0)")
    probe_cmd.add_argument("--bits", type=int, default=None,
                           help="payload bits per grid point (default: the scenario's budget)")
    probe_cmd.add_argument("--chunk-symbols", type=int, default=DEFAULT_CHUNK_SYMBOLS,
                           help="symbols per Monte-Carlo chunk (part of the cache key)")
    probe_cmd.add_argument("--trial-mode", default=None, choices=("naive", "importance"),
                           help="estimator override (part of the cache key)")
    probe_cmd.add_argument("--ci-target", type=float, default=None, metavar="HALF_WIDTH",
                           help="adaptive CI half-width target (part of the cache key)")
    probe_cmd.add_argument("--max-symbols", type=int, default=None,
                           help="per-point symbol cap for --ci-target runs")
    probe_cmd.add_argument("--store", default=DEFAULT_STORE,
                           help=f"artefact store directory (default {DEFAULT_STORE!r})")
    probe_cmd.add_argument("--json", action="store_true",
                           help="machine-readable output")

    show_cmd = commands.add_parser("show", help="print a stored report artefact")
    show_cmd.add_argument("artifact", help="artefact id or path")
    show_cmd.add_argument("--store", default=DEFAULT_STORE,
                          help=f"artefact store directory (default {DEFAULT_STORE!r})")
    show_cmd.add_argument("--json", action="store_true",
                          help="print the report mapping as JSON instead of the table")

    compare_cmd = commands.add_parser(
        "compare", help="per-point metric deltas between two artefacts"
    )
    compare_cmd.add_argument("artifact_a", help="baseline artefact id or path")
    compare_cmd.add_argument("artifact_b", help="candidate artefact id or path")
    compare_cmd.add_argument("--metric", required=True, help="metric name to diff")
    compare_cmd.add_argument("--store", default=DEFAULT_STORE,
                             help=f"artefact store directory (default {DEFAULT_STORE!r})")
    compare_cmd.add_argument("--json", action="store_true",
                             help="machine-readable output")

    serve_cmd = commands.add_parser(
        "serve", help="boot the experiment service (HTTP + SSE) on this store"
    )
    serve_cmd.add_argument("--host", default=DEFAULT_SERVE_HOST,
                           help=f"bind address (default {DEFAULT_SERVE_HOST})")
    serve_cmd.add_argument("--port", type=int, default=DEFAULT_SERVE_PORT,
                           help=f"TCP port; 0 picks an ephemeral one "
                                f"(default {DEFAULT_SERVE_PORT})")
    serve_cmd.add_argument("--store", default=DEFAULT_STORE,
                           help=f"artefact store directory (default {DEFAULT_STORE!r})")
    serve_cmd.add_argument("--executor", default=None, choices=available_executors(),
                           help="grid-point dispatch for served runs (default: serial)")
    serve_cmd.add_argument("--workers", type=_workers_arg, default=None,
                           help="process-pool size or cluster worker addresses "
                                "host:port,… (implies the matching executor)")
    serve_cmd.add_argument("--chunk-symbols", type=int, default=DEFAULT_CHUNK_SYMBOLS,
                           help="default chunk size for requests that omit one")

    worker_cmd = commands.add_parser(
        "worker", help="join the distributed execution fleet"
    )
    worker_cmd.add_argument("--listen", default=None, metavar="HOST:PORT",
                            help="bind and await the coordinator (port 0 picks "
                                 "an ephemeral one; the bound address is "
                                 "printed on stdout)")
    worker_cmd.add_argument("--connect", default=None, metavar="HOST:PORT",
                            help="dial a listening coordinator instead "
                                 "(re-dials while it is away)")
    worker_cmd.add_argument("--name", default=None,
                            help="display name for telemetry (default worker-<pid>)")
    worker_cmd.add_argument("--heartbeat", type=float, default=None, metavar="SECONDS",
                            help="liveness frame interval while attached")

    workers_cmd = commands.add_parser(
        "workers", help="probe a fleet's workers and list their status"
    )
    workers_cmd.add_argument("addresses", metavar="HOST:PORT[,HOST:PORT…]",
                             help="comma-separated worker addresses to probe")
    workers_cmd.add_argument("--json", action="store_true",
                             help="machine-readable output")
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    # One catalogue format for every consumer: --json prints exactly what
    # the experiment service serves on GET /scenarios.
    catalogue = frontdoor.scenario_catalogue()
    if args.json:
        print(json.dumps(catalogue, indent=2))
        return 0
    table = ReportTable(columns=["scenario", "points", "backend", "channels", "bits/point"])
    for entry in catalogue:
        table.add_row(
            entry["name"],
            entry["points"],
            entry["backend"],
            entry["channels"],
            entry["bits_per_point"],
        )
    print(table.render())
    return 0


def _retry_policy(args: argparse.Namespace) -> Optional[RetryPolicy]:
    if args.retry is None:
        if args.retry_timeout is not None or args.retry_backoff is not None:
            raise ValueError("--retry-timeout/--retry-backoff need --retry N")
        return None
    return RetryPolicy(
        max_attempts=args.retry,
        timeout=args.retry_timeout,
        backoff=args.retry_backoff if args.retry_backoff is not None else 0.0,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    if args.resume and args.no_store:
        raise ValueError("--resume reads the checkpoint from the store; drop --no-store")
    scenario = frontdoor.resolve_scenario(
        name=args.scenario,
        file=args.file,
        bits=args.bits,
        trial_mode=args.trial_mode,
        ci_target=args.ci_target,
        max_symbols=args.max_symbols,
    )
    if args.kernel is not None:
        scenario = scenario.with_kernel(args.kernel)
    runner = ExperimentRunner(
        scenario,
        seed=args.seed,
        backend=args.backend,
        chunk_symbols=args.chunk_symbols,
        executor=args.executor,
        workers=args.workers,
        retry=_retry_policy(args),
        failure_policy=args.failure_policy,
    )
    checkpoint = None
    if not args.no_store:
        # Storing runs always checkpoint: a killed run can resume instead of
        # starting over.  A fresh (non-resume) run discards any stale
        # checkpoint left by a previous identical invocation.
        checkpoint = ReportStore(args.store).run_checkpoint(
            scenario.to_mapping(), runner.backend, args.seed, args.chunk_symbols
        )
        if not args.resume:
            checkpoint.discard()
    with runner.session(checkpoint=checkpoint) as session:
        if not args.quiet:
            _status(
                f"running {scenario.name!r}: {session.total_points} point(s), "
                f"backend={runner.backend}, executor={session.executor!r}"
            )
            if session.resumed_points:
                _status(
                    f"resuming: {session.resumed_points} of {session.total_points} "
                    f"point(s) restored from checkpoint"
                )
        for point in session:
            if not args.quiet:
                shown = _format_parameters(point.parameters)
                _status(f"  [{session.completed_points}/{session.total_points}] {shown}")
        report = session.report()
        stats = session.executor_stats
        if not args.quiet and "tasks_stolen" in stats:
            _status(
                f"cluster: {stats.get('chunk_tasks', 0)} chunk task(s), "
                f"fan-out ≤{stats.get('max_fan_out', 1)}, "
                f"{stats.get('tasks_stolen', 0)} stolen, "
                f"{stats.get('tasks_requeued', 0)} requeued, "
                f"{stats.get('workers_lost', 0)} worker(s) lost"
            )
        for failure in session.failed_points:
            _status(
                f"  FAILED {_format_parameters(failure.parameters)}: "
                f"{failure.error_type} after {failure.attempts} attempt(s)"
            )
    # Persist before printing: a closed stdout pipe must never cost the
    # artefact of a completed simulation.  The checkpoint key doubles as the
    # run key, indexing the artefact for O(1) cache probes (`repro probe`,
    # the experiment service).
    if not args.no_store:
        path = ReportStore(args.store).save(report, run_key=checkpoint.run_key)
        _status(f"artefact: {path}")
        if checkpoint is not None:
            checkpoint.discard()
    if args.json:
        print(json.dumps(report.to_mapping(), indent=2))
    else:
        print(report.summary())
    return 0


def _cmd_probe(args: argparse.Namespace) -> int:
    """Cache-probe: the run's artefact key and hit/pending state, no simulation."""
    request = frontdoor.RunRequest.build(
        args.scenario,
        file=args.file,
        seed=args.seed,
        backend=args.backend,
        chunk_symbols=args.chunk_symbols,
        bits=args.bits,
        trial_mode=args.trial_mode,
        ci_target=args.ci_target,
        max_symbols=args.max_symbols,
        kernel=args.kernel,
    )
    result = frontdoor.probe(ReportStore(args.store), request)
    if args.json:
        print(json.dumps(result, indent=2))
    elif result["state"] == "hit":
        print(f"HIT {result['artifact']} (run {result['run']})")
    else:
        print(
            f"PENDING run {result['run']} "
            f"({result['scenario']}, backend={result['backend']}, seed={result['seed']})"
        )
    return 0 if result["state"] == "hit" else EXIT_CACHE_MISS


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ExperimentService, ServiceBindError

    service = ExperimentService(
        store=args.store,
        executor=args.executor,
        workers=args.workers,
        chunk_symbols=args.chunk_symbols,
    )

    def _ready(host: str, port: int) -> None:
        # Machine-parseable readiness line on stdout (the smoke harness and
        # supervisors scrape it for the ephemeral port); detail on stderr.
        print(f"serving http://{host}:{port}", flush=True)
        _status(
            f"experiment service on http://{host}:{port} — store={args.store!r}, "
            f"endpoints: POST /runs, GET /runs/{{id}}[/events], /scenarios, "
            f"/probe, /artifacts, /compare, /stats (Ctrl-C to stop)"
        )

    try:
        service.serve_forever(args.host, args.port, on_ready=_ready)
    except ServiceBindError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_PORT_BIND
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    store = ReportStore(args.store)
    report = store.load(args.artifact)
    if args.json:
        print(json.dumps(report.to_mapping(), indent=2))
    else:
        print(report.summary())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    store = ReportStore(args.store)
    try:
        comparison = store.compare(args.artifact_a, args.artifact_b, args.metric)
    except KeyError as error:  # point.metric: unknown metric name
        raise ValueError(error.args[0]) from None
    if args.json:
        print(json.dumps(comparison, indent=2))
        return 0
    table = ReportTable(columns=["parameters", "a", "b", "delta"])
    for row in comparison["points"]:
        table.add_row(_format_parameters(row["parameters"]), row["a"], row["b"], row["delta"])
    print(f"metric {args.metric!r}: {args.artifact_a} -> {args.artifact_b}")
    print(table.render())
    for side, key in (("a", "only_a"), ("b", "only_b")):
        if comparison[key]:
            print(f"points only in {side}: {comparison[key]}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.cluster import ClusterWorker

    kwargs = {}
    if args.heartbeat is not None:
        kwargs["heartbeat_interval"] = args.heartbeat
    worker = ClusterWorker(
        listen=args.listen, connect=args.connect, name=args.name, **kwargs
    )

    def _ready(host: str, port: int) -> None:
        # Machine-parseable readiness line on stdout (the cluster smoke
        # harness scrapes it for the ephemeral port); detail on stderr.
        print(f"worker listening on {host}:{port}", flush=True)
        _status(f"cluster worker {worker.name!r} awaiting a coordinator (Ctrl-C to stop)")

    if args.connect is not None:
        _status(f"cluster worker {worker.name!r} dialling {args.connect} (Ctrl-C to stop)")
    try:
        worker.serve_forever(on_ready=_ready)
    except KeyboardInterrupt:
        worker.stop()
    return 0


def _cmd_workers(args: argparse.Namespace) -> int:
    from repro.cluster import parse_addresses, probe_worker

    rows = [probe_worker(address) for address in parse_addresses(args.addresses)]
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    table = ReportTable(columns=["address", "name", "state", "tasks done", "uptime"])
    for row in rows:
        table.add_row(
            row.get("address", "?"),
            row.get("name", "-"),
            row.get("state", "?"),
            row.get("tasks_done", "-"),
            row.get("uptime", "-"),
        )
    print(table.render())
    # Like `repro probe`: an all-dead fleet is a distinct, scriptable status.
    return 0 if any(row.get("state") != "unreachable" for row in rows) else 1


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "probe": _cmd_probe,
    "show": _cmd_show,
    "compare": _cmd_compare,
    "serve": _cmd_serve,
    "worker": _cmd_worker,
    "workers": _cmd_workers,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return _COMMANDS[args.command](args)
    except CorruptArtifactError as error:
        # The artefact exists but is damaged (truncated, digest mismatch):
        # a distinct status so callers can quarantine/re-run mechanically.
        print(f"error: {error.args[0] if error.args else error}", file=sys.stderr)
        if error.path is not None:
            print(
                f"hint: move it aside with ReportStore.quarantine({str(error.path)!r}) "
                f"and re-run the scenario",
                file=sys.stderr,
            )
        return EXIT_CORRUPT_ARTIFACT
    except (ValueError, FileNotFoundError) as error:
        # Domain errors (unknown scenario/metric/artefact, bad values) — not
        # tracebacks.  KeyError is deliberately absent: curated lookups
        # convert theirs at the call site, so an internal KeyError anywhere
        # else surfaces as a real traceback instead of `error: 'somekey'`.
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream closed the pipe (`repro run ... | head`): exit quietly.
        # Redirect stdout to devnull so the interpreter's shutdown flush
        # does not raise a second time.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
