"""Tests for repro.analysis.sweep."""

import numpy as np
import pytest

from repro.analysis.sweep import Sweep, SweepResult, grid_sweep


class TestSweep:
    def test_grid_evaluates_all_combinations(self):
        sweep = Sweep({"a": [1, 2, 3], "b": [10, 20]})
        result = sweep.run(lambda a, b: a * b)
        assert len(result) == 6
        assert sweep.size() == 6
        assert sorted(result.values()) == [10, 20, 20, 30, 40, 60]

    def test_column_extraction(self):
        result = grid_sweep(lambda a, b: a + b, a=[1, 2], b=[5])
        assert sorted(result.column("a")) == [1, 2]
        assert result.column("b") == [5, 5]

    def test_as_grid_layout(self):
        result = grid_sweep(lambda n, c: n * 10 + c, n=[1, 2], c=[0, 1, 2])
        rows, cols, grid = result.as_grid("n", "c")
        assert list(rows) == [1, 2]
        assert list(cols) == [0, 1, 2]
        assert grid[1, 2] == pytest.approx(22.0)
        assert grid.shape == (2, 3)

    def test_best_point(self):
        result = grid_sweep(lambda x: (x - 3) ** 2, x=[0, 1, 2, 3, 4])
        best = result.best(key=lambda p: p.value, maximize=False)
        assert best.parameter("x") == 3

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            Sweep({"a": []})
        with pytest.raises(ValueError):
            Sweep({})

    def test_best_on_empty_result_raises(self):
        result = SweepResult(parameter_names=("x",))
        with pytest.raises(ValueError):
            result.best(key=lambda p: p.value)

    def test_point_as_dict_and_unknown_parameter(self):
        result = grid_sweep(lambda a: a, a=[7])
        point = result.points[0]
        assert point.as_dict() == {"a": 7, "value": 7}
        with pytest.raises(KeyError):
            point.parameter("missing")

    def test_iteration(self):
        result = grid_sweep(lambda a: a * 2, a=[1, 2, 3])
        assert [p.value for p in result] == [2, 4, 6]
