"""Tests for repro.spad.device."""

import pytest

from repro.analysis.units import NM, NS
from repro.simulation.randomness import RandomSource
from repro.spad.afterpulsing import AfterpulsingModel
from repro.spad.dark_counts import DarkCountModel
from repro.spad.device import DetectionOrigin, SpadConfig, SpadDevice
from repro.spad.jitter import JitterModel
from repro.spad.quenching import QuenchingCircuit


def make_device(seed=0, **kwargs):
    defaults = dict(
        dark_counts=DarkCountModel(rate_at_reference=0.0),
        afterpulsing=AfterpulsingModel(probability=0.0),
        jitter=JitterModel(sigma=0.0, tail_fraction=0.0),
        random_source=RandomSource(seed),
    )
    defaults.update(kwargs)
    return SpadDevice(**defaults)


class TestSpadConfig:
    def test_active_area(self):
        config = SpadConfig(active_diameter=8e-6)
        assert config.active_area == pytest.approx(3.14159 * 16e-12, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            SpadConfig(active_diameter=0.0)
        with pytest.raises(ValueError):
            SpadConfig(fill_factor=0.0)
        with pytest.raises(ValueError):
            SpadConfig(excess_bias=-1.0)


class TestStaticCharacteristics:
    def test_detection_probability_uses_pdp_curve(self):
        device = make_device()
        assert 0.1 < device.detection_probability < 0.5

    def test_detection_probability_for_photons_saturates(self):
        device = make_device()
        assert device.detection_probability_for_photons(0.0) == 0.0
        assert device.detection_probability_for_photons(1000.0) == pytest.approx(1.0)
        low = device.detection_probability_for_photons(1.0)
        high = device.detection_probability_for_photons(10.0)
        assert low < high
        with pytest.raises(ValueError):
            device.detection_probability_for_photons(-1.0)

    def test_dark_count_rate_and_saturation(self):
        device = SpadDevice(random_source=RandomSource(0))
        assert device.dark_count_rate > 0
        assert device.saturated_count_rate() == pytest.approx(1.0 / device.dead_time)


class TestWindowDetection:
    def test_bright_pulse_always_detected(self):
        device = make_device()
        event = device.detect_in_window(0.0, 40 * NS, photon_time=10 * NS, mean_photons=1000.0)
        assert event is not None
        assert event.origin is DetectionOrigin.PHOTON
        assert event.time == pytest.approx(10 * NS)

    def test_no_pulse_and_no_noise_gives_nothing(self):
        device = make_device()
        assert device.detect_in_window(0.0, 40 * NS, photon_time=None) is None

    def test_photon_time_must_be_inside_window(self):
        device = make_device()
        with pytest.raises(ValueError):
            device.detect_in_window(0.0, 40 * NS, photon_time=50 * NS)
        with pytest.raises(ValueError):
            device.detect_in_window(0.0, -1.0, photon_time=None)

    def test_dead_time_blocks_next_window(self):
        device = make_device(quenching=QuenchingCircuit(dead_time=100 * NS, gate_recovery=5 * NS))
        first = device.detect_in_window(0.0, 40 * NS, photon_time=30 * NS, mean_photons=1000.0)
        assert first is not None
        second = device.detect_in_window(40 * NS, 40 * NS, photon_time=50 * NS, mean_photons=1000.0)
        assert second is None  # still within the 100 ns dead time

    def test_rearm_allows_next_window(self):
        device = make_device(quenching=QuenchingCircuit(dead_time=100 * NS, gate_recovery=5 * NS))
        device.detect_in_window(0.0, 40 * NS, photon_time=30 * NS, mean_photons=1000.0)
        assert device.rearm(40 * NS) is True
        second = device.detect_in_window(40 * NS, 40 * NS, photon_time=50 * NS, mean_photons=1000.0)
        assert second is not None

    def test_rearm_respects_physical_recovery(self):
        device = make_device(quenching=QuenchingCircuit(dead_time=100 * NS, gate_recovery=20 * NS))
        device.detect_in_window(0.0, 40 * NS, photon_time=35 * NS, mean_photons=1000.0)
        assert device.rearm(40 * NS) is False  # only 5 ns since the avalanche
        with pytest.raises(ValueError):
            device.rearm(10 * NS)

    def test_reset_clears_state(self):
        device = make_device()
        device.detect_in_window(0.0, 40 * NS, photon_time=30 * NS, mean_photons=1000.0)
        device.reset()
        assert device.is_ready(0.0)

    def test_dark_counts_preempt_late_photons(self):
        device = make_device(
            dark_counts=DarkCountModel(rate_at_reference=1e9),  # absurdly noisy device
            random_source=RandomSource(5),
        )
        event = device.detect_in_window(0.0, 40 * NS, photon_time=39 * NS, mean_photons=1000.0)
        assert event is not None
        assert event.origin is DetectionOrigin.DARK_COUNT
        assert event.time < 39 * NS

    def test_afterpulse_appears_in_later_window(self):
        device = make_device(
            afterpulsing=AfterpulsingModel(probability=1.0, time_constant=200 * NS),
            quenching=QuenchingCircuit(dead_time=10 * NS, gate_recovery=5 * NS),
            random_source=RandomSource(3),
        )
        first = device.detect_in_window(0.0, 40 * NS, photon_time=5 * NS, mean_photons=1000.0)
        assert first is not None
        # Scan subsequent windows without any light: only after-pulses can fire.
        origins = []
        for index in range(1, 50):
            start = index * 40 * NS
            device.rearm(start)
            event = device.detect_in_window(start, 40 * NS, photon_time=None)
            if event is not None:
                origins.append(event.origin)
        assert DetectionOrigin.AFTERPULSE in origins

    def test_first_detection_picks_earliest_in_range_photon(self):
        device = make_device()
        event = device.first_detection(
            0.0, 40 * NS, photon_times=[50 * NS, 12 * NS, 20 * NS], mean_photons_per_pulse=1000.0
        )
        assert event is not None
        assert event.time == pytest.approx(12 * NS)
