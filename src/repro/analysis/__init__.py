"""Analysis helpers: units, statistics, parameter sweeps, plotting and reports."""

from repro.analysis.units import (
    GHZ,
    KELVIN_0C,
    MHZ,
    NS,
    PS,
    US,
    db_to_linear,
    format_engineering,
    format_si,
    linear_to_db,
)
from repro.analysis.statistics import (
    Histogram,
    RunningStats,
    binomial_confidence_95,
    bootstrap_confidence_interval,
    percentile,
)
from repro.analysis.sweep import Sweep, SweepResult, grid_sweep, link_ber_sweep
from repro.analysis.plotting import ascii_heatmap, ascii_histogram, ascii_line_plot
from repro.analysis.report import ReportTable, TextReport

__all__ = [
    "PS",
    "NS",
    "US",
    "MHZ",
    "GHZ",
    "KELVIN_0C",
    "db_to_linear",
    "linear_to_db",
    "format_si",
    "format_engineering",
    "Histogram",
    "RunningStats",
    "percentile",
    "binomial_confidence_95",
    "bootstrap_confidence_interval",
    "Sweep",
    "SweepResult",
    "grid_sweep",
    "link_ber_sweep",
    "ascii_heatmap",
    "ascii_histogram",
    "ascii_line_plot",
    "TextReport",
    "ReportTable",
]


def __getattr__(name: str):
    if name == "ExperimentReport":
        # Warn here (not via repro.analysis.report's own __getattr__) so the
        # DeprecationWarning is attributed to the caller's line, not to this
        # shim.
        import warnings

        warnings.warn(
            "repro.analysis.ExperimentReport was renamed to TextReport; "
            "the ExperimentReport name now belongs to the structured "
            "repro.scenarios.ExperimentReport data artefact",
            DeprecationWarning,
            stacklevel=2,
        )
        return TextReport
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
