"""Metastability model for the delay-line sampling flip-flops.

When the hit signal arrives at a tap almost exactly on the sampling clock
edge, the corresponding flip-flop may resolve to either value, producing
"bubbles" in the thermometer code.  The paper's fine controller converts the
thermometer code to binary in a way that tolerates such bubbles; this module
provides the error-injection side so that the tolerance can be exercised in
simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.units import PS
from repro.simulation.randomness import RandomSource


@dataclass(frozen=True)
class MetastabilityModel:
    """Per-tap sampling uncertainty.

    Attributes
    ----------
    aperture:
        Width of the metastability window around the ideal sampling instant
        [s].  A tap whose transition falls within ``aperture`` of the clock
        edge resolves randomly.
    flip_probability:
        Probability that a tap inside the aperture resolves to the "wrong"
        value.
    """

    aperture: float = 10.0 * PS
    flip_probability: float = 0.5

    def __post_init__(self) -> None:
        if self.aperture < 0:
            raise ValueError(f"aperture must be non-negative, got {self.aperture}")
        if not 0.0 <= self.flip_probability <= 1.0:
            raise ValueError(
                f"flip_probability must be within [0, 1], got {self.flip_probability}"
            )

    def corrupt(
        self,
        code: np.ndarray,
        tap_times: np.ndarray,
        elapsed: float,
        random_source: Optional[RandomSource] = None,
    ) -> np.ndarray:
        """Inject bubbles into a latched thermometer code.

        ``tap_times`` are the cumulative tap delays; ``elapsed`` is the true
        interval being measured.  Taps whose cumulative delay is within the
        aperture of ``elapsed`` are candidates for a random flip.
        """
        array = np.asarray(code, dtype=np.int8).copy()
        taps = np.asarray(tap_times, dtype=float)
        if array.size != taps.size:
            raise ValueError("code and tap_times must have the same length")
        if self.aperture == 0 or random_source is None:
            return array
        near_edge = np.abs(taps - elapsed) <= self.aperture
        for index in np.nonzero(near_edge)[0]:
            if random_source.bernoulli(self.flip_probability):
                array[index] ^= 1
        return array

    def corrupt_batch(
        self,
        codes: np.ndarray,
        tap_times: np.ndarray,
        elapsed: np.ndarray,
        random_source: Optional[RandomSource] = None,
    ) -> np.ndarray:
        """Vectorised :meth:`corrupt` over a whole batch of latched codes.

        ``codes`` is a ``(samples, taps)`` matrix of thermometer codes and
        ``elapsed`` the matching vector of true intervals.  Candidate taps are
        flipped with one bulk uniform draw instead of per-tap Bernoulli calls.

        Draw-for-draw contract: numpy generators produce the identical stream
        whether uniforms are drawn one at a time or as one array, and the
        candidates here are enumerated in the same (sample-major, tap-
        ascending) order the scalar path visits them — so given equal-seeded
        sources, this method injects *exactly* the bubbles that per-sample
        :meth:`corrupt` calls would.  The TDC batch conversion relies on that
        to stay equivalent to its scalar path with metastability enabled.
        """
        array = np.asarray(codes, dtype=np.int8).copy()
        taps = np.asarray(tap_times, dtype=float)
        times = np.asarray(elapsed, dtype=float)
        if array.ndim != 2 or array.shape[1] != taps.size:
            raise ValueError(
                f"codes must be (samples, {taps.size}), got {array.shape}"
            )
        if times.shape != (array.shape[0],):
            raise ValueError(
                f"elapsed must have one entry per code row, got {times.shape}"
            )
        if self.aperture == 0 or random_source is None:
            return array
        near_edge = np.abs(taps[None, :] - times[:, None]) <= self.aperture
        candidates = int(np.count_nonzero(near_edge))
        if candidates == 0:
            return array
        flips = random_source.generator.random(candidates) < self.flip_probability
        array[near_edge] ^= flips.astype(np.int8)
        return array

    def expected_bubble_rate(self, mean_element_delay: float) -> float:
        """Expected fraction of conversions containing at least one bubble.

        For a uniformly distributed hit phase, the transition tap lands within
        the aperture with probability ``min(1, aperture / delay)`` and then
        flips with ``flip_probability``.
        """
        if mean_element_delay <= 0:
            raise ValueError("mean_element_delay must be positive")
        within = min(1.0, self.aperture / mean_element_delay)
        return within * self.flip_probability
