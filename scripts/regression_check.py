#!/usr/bin/env python
"""Store-driven regression gate (the CI follow-up to the ``BENCH_*`` pattern).

Re-runs a small, fully deterministic scenario through the real CLI front door
(``repro run``), then uses :meth:`repro.scenarios.store.ReportStore.compare`
to diff the fresh artefact against the reference artefact committed under
``tests/reference_artifacts/``.  Reports are a pure function of
``(scenario, seed, chunk_symbols)``, so any non-zero per-point delta — or any
grid drift — means the simulation's numbers moved and must be acknowledged by
regenerating the reference::

    PYTHONPATH=src python -m repro run ber-vs-photons --bits 256 --seed 1 \
        --store tests/reference_artifacts

Exit status: 0 when bit-identical, 1 on drift, 3 when the reference artefact
is missing or unreadable (a broken *gate*, not a regression — fix the
reference, don't chase the simulation).
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

SCENARIO = "ber-vs-photons"
SEED = 1
BITS = 256
METRIC = "ber"
REFERENCE_DIR = REPO / "tests" / "reference_artifacts"

#: Exit status for a missing/unreadable reference artefact: the gate itself
#: is broken (regenerate the reference), distinct from 1 = real drift.
EXIT_BAD_REFERENCE = 3


def main() -> int:
    from repro.cli import main as cli_main
    from repro.scenarios.store import CorruptArtifactError, ReportStore

    references = sorted(REFERENCE_DIR.glob(f"{SCENARIO}__*__seed{SEED}__*.json"))
    if not references:
        print(
            f"error: no committed reference artefact for {SCENARIO!r} (seed {SEED}) "
            f"under {REFERENCE_DIR}\n"
            f"regenerate it with:\n"
            f"  PYTHONPATH=src python -m repro run {SCENARIO} --bits {BITS} "
            f"--seed {SEED} --store {REFERENCE_DIR}",
            file=sys.stderr,
        )
        return EXIT_BAD_REFERENCE
    reference = references[-1]
    try:
        ReportStore(REFERENCE_DIR).load(reference)
    except (CorruptArtifactError, ValueError, OSError) as error:
        print(
            f"error: reference artefact {reference} is unreadable: {error}\n"
            f"regenerate it with:\n"
            f"  PYTHONPATH=src python -m repro run {SCENARIO} --bits {BITS} "
            f"--seed {SEED} --store {REFERENCE_DIR}",
            file=sys.stderr,
        )
        return EXIT_BAD_REFERENCE

    with tempfile.TemporaryDirectory() as scratch:
        status = cli_main(
            [
                "run",
                SCENARIO,
                "--bits",
                str(BITS),
                "--seed",
                str(SEED),
                "--store",
                scratch,
                "--quiet",
            ]
        )
        if status != 0:
            return status
        store = ReportStore(scratch)
        current = store.latest(SCENARIO)
        comparison = store.compare(reference, current, METRIC)

    drifted = [row for row in comparison["points"] if row["delta"] != 0.0]
    if drifted or comparison["only_a"] or comparison["only_b"]:
        print(f"REGRESSION: {SCENARIO!r} drifted from {reference.name}", file=sys.stderr)
        for row in drifted:
            print(
                f"  {row['parameters']}: {METRIC} {row['a']} -> {row['b']} "
                f"(delta {row['delta']:+g})",
                file=sys.stderr,
            )
        for key, side in (("only_a", "reference"), ("only_b", "current")):
            for parameters in comparison[key]:
                print(f"  point only in {side}: {parameters}", file=sys.stderr)
        print(
            "if the change is intentional, regenerate the reference artefact "
            "(see this script's docstring)",
            file=sys.stderr,
        )
        return 1
    print(
        f"regression gate ok: {SCENARIO!r} ({len(comparison['points'])} points) "
        f"bit-identical to {reference.name}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
