"""Monte-Carlo experiment runner.

Several of the paper's quantities (DNL/INL of the delay line, PPM symbol error
rate, coverage of the fine chain over temperature) are estimated by running
the same stochastic trial many times with independent seeds.  The runner here
standardises seeding, accumulation and summary statistics for such
experiments.

Scalar-vs-batch contract
------------------------
:meth:`MonteCarloRunner.run` invokes a scalar trial once per repetition with a
freshly constructed :class:`RandomSource` — simple, but the per-trial source
construction and Python call dominate cheap trials.
:meth:`MonteCarloRunner.run_batch` instead pre-splits one child seed per
*chunk* and hands the trial a bare ``numpy.random.Generator`` together with
the number of trials to evaluate, so an array-valued trial can vectorise the
whole chunk internally (the same design as the batch link engine in
:mod:`repro.core.fastlink`).  Results are deterministic in
``(seed, chunk_size)``; the two entry points sample the same distributions but
are not draw-for-draw identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.statistics import RunningStats
from repro.simulation.randomness import RandomSource, split_seed


@dataclass
class MonteCarloResult:
    """Aggregated outcome of a Monte-Carlo experiment.

    ``samples`` holds the raw per-trial scalar outputs; ``metadata`` holds any
    per-trial auxiliary data returned by the trial function.
    """

    samples: np.ndarray
    metadata: List[dict] = field(default_factory=list)

    @property
    def trials(self) -> int:
        return int(self.samples.size)

    @property
    def mean(self) -> float:
        if self.samples.size == 0:
            raise ValueError("no trials were run")
        return float(np.mean(self.samples))

    @property
    def std(self) -> float:
        if self.samples.size == 0:
            raise ValueError("no trials were run")
        if self.samples.size == 1:
            return 0.0
        return float(np.std(self.samples, ddof=1))

    @property
    def minimum(self) -> float:
        return float(np.min(self.samples))

    @property
    def maximum(self) -> float:
        return float(np.max(self.samples))

    def standard_error(self) -> float:
        if self.samples.size == 0:
            raise ValueError("no trials were run")
        return self.std / np.sqrt(self.samples.size)

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.samples, q))


@dataclass
class LinkBatchTrial:
    """A :meth:`MonteCarloRunner.run_batch` trial over the optical link.

    The callable form of :func:`link_batch_trial` — a top-level class rather
    than a closure, so a trial whose fields are plain data (``on_result``
    left ``None``) **pickles by value**.  Today's scenario parallelism ships
    :class:`~repro.scenarios.executors.PointTask` work units and rebuilds the
    trial inside each worker; being a picklable value is what keeps the
    *chunk*-level dispatch of ``run_batch`` itself open as a future fan-out
    axis (the per-chunk seed layout is already order-independent).  Calling
    it defines the reproducibility protocol shared by every chunked link
    experiment: one link seed drawn from the chunk generator, then the
    chunk's payload bits, then one transmission.
    """

    config: object
    backend: Optional[str] = None
    channel: object = None
    per_symbol: str = "error_indicator"
    on_result: Optional[Callable] = None
    channels: Optional[int] = None
    crosstalk: object = None
    #: Optional :class:`~repro.spad.device.ImportanceSettings`; when set, the
    #: link runs the importance-sampled path and samples become likelihood-
    #: *weighted* per-symbol error figures (w_i * errors_i), whose mean is an
    #: unbiased estimate of the naive sample mean.
    importance: object = None
    #: Optional compute-kernel name forwarded to :func:`make_link`; kernels
    #: are bit-identical by contract, so this never changes the samples.
    kernel: Optional[str] = None

    def __post_init__(self) -> None:
        if self.per_symbol not in ("error_indicator", "bit_errors"):
            raise ValueError(
                "per_symbol must be 'error_indicator' or 'bit_errors', "
                f"got {self.per_symbol!r}"
            )

    def __call__(self, generator: np.random.Generator, count: int) -> np.ndarray:
        # Imported lazily: repro.core.link imports this package's randomness
        # module at import time, so a module-level import here would be circular.
        from repro.core.backend import make_link

        link = make_link(
            self.config,
            backend=self.backend,
            channel=self.channel,
            seed=int(generator.integers(0, 2**31)),
            channels=self.channels,
            crosstalk=self.crosstalk,
            importance=self.importance,
            kernel=self.kernel,
        )
        payload = generator.integers(0, 2, size=count * self.config.ppm_bits).tolist()
        result = link.transmit_bits(payload)
        if self.on_result is not None:
            self.on_result(result)
        sent = np.asarray(result.transmitted_bits).reshape(count, -1)
        received = np.asarray(result.received_bits).reshape(count, -1)
        mismatches = sent != received
        if self.per_symbol == "bit_errors":
            samples = np.count_nonzero(mismatches, axis=1).astype(float)
        else:
            samples = np.any(mismatches, axis=1).astype(float)
        if self.importance is not None:
            samples = samples * np.asarray(result.symbol_weights, dtype=float)
        return samples


def link_batch_trial(
    config,
    backend: Optional[str] = None,
    channel=None,
    per_symbol: str = "error_indicator",
    on_result: Optional[Callable] = None,
    channels: Optional[int] = None,
    crosstalk=None,
    importance=None,
    kernel: Optional[str] = None,
) -> LinkBatchTrial:
    """Build a :meth:`MonteCarloRunner.run_batch` trial over the optical link.

    Each Monte-Carlo trial is one PPM symbol pushed through a link built via
    the backend registry (:func:`repro.core.backend.make_link`), so callers
    select the engine by name — ``"batch"`` (default), ``"scalar"`` or
    ``"multichannel"`` — instead of instantiating a concrete link class.  The
    returned :class:`LinkBatchTrial` defines the reproducibility protocol
    shared by every chunked link experiment (the scenario runner included):
    one link seed drawn from the chunk generator, then the chunk's payload
    bits, then one transmission.  It is a picklable value whenever its fields
    are (``on_result=None``) — see the class docstring for why.

    ``channels``/``crosstalk`` are forwarded to :func:`make_link` for
    multichannel backends: each chunk's symbols are then striped across the
    parallel channels, but a trial remains one PPM symbol, so sample shapes
    and seeding are unchanged.

    ``per_symbol`` selects the sample reduction: ``"error_indicator"`` yields
    ``1.0`` for symbols with at least one bit error, ``"bit_errors"`` the
    number of erroneous bits per symbol.  ``on_result`` (optional) receives
    each chunk's full :class:`~repro.core.link.TransmissionResult` for side
    statistics such as detection-origin counts (a
    :class:`~repro.core.multilink.MultichannelResult` for multichannel
    backends, carrying the per-channel breakdown).

    ``importance`` (an :class:`~repro.spad.device.ImportanceSettings`) turns
    the trial into its likelihood-weighted rare-event form: samples become
    ``w_i * errors_i``.
    """
    return LinkBatchTrial(
        config=config,
        backend=backend,
        channel=channel,
        per_symbol=per_symbol,
        on_result=on_result,
        channels=channels,
        crosstalk=crosstalk,
        importance=importance,
        kernel=kernel,
    )


#: Traffic patterns :class:`NocTrafficTrial` can generate (and scenario
#: ``noc_traffic`` axes may take): destination uniform over the other nodes,
#: a hotspot node attracting most traffic, or nearest-neighbour exchanges.
TRAFFIC_PATTERNS = ("uniform", "hotspot", "nearest-neighbour")

@dataclass
class NocTrafficTrial:
    """A :meth:`MonteCarloRunner.run_batch` trial over the slotted optical bus.

    The NoC analogue of :class:`LinkBatchTrial`: a top-level picklable value
    whose call contract makes network traffic chunkable — **one trial is one
    offered packet**, and one *chunk* is one bus run.  Per chunk, the trial
    draws a bus seed from the chunk generator, generates ``count`` packets
    according to the traffic pattern (sources, destinations, payloads and
    arrival slots are all generator draws), drains them through an
    epoch-batched :class:`~repro.noc.bus.OpticalBus` on the configured
    backend, and returns each packet's delivery latency in seconds
    (``NaN`` for packets that were corrupted or never drained).

    ``offered_load`` shapes the arrival process: packets arrive uniformly
    over a horizon sized so offered traffic consumes that fraction of the
    bus's slot capacity (1.0 = saturation; above 1.0 the queues grow without
    bound and latency measures backlog drain).  ``on_result`` (optional)
    receives each chunk's completed :class:`~repro.noc.bus.OpticalBus` for
    side statistics — aggregate counters via ``bus.statistics``, per-packet
    outcomes via ``bus.outcomes``.

    The bus's per-link seeds derive from the chunk seed through the central
    seed-derivation policy, so chunks — and the (source, destination) links
    within one chunk — never share a random stream.
    """

    config: object
    backend: Optional[str] = None
    stack_dies: int = 4
    stack_thickness: float = 15e-6
    nodes_per_die: int = 1
    traffic: str = "uniform"
    offered_load: float = 0.5
    packet_bits: int = 64
    hotspot_fraction: float = 0.7
    emitted_photons: Optional[float] = None
    epoch_packets: int = 64
    on_result: Optional[Callable] = None
    #: Optional compute-kernel name forwarded to the bus (vectorised
    #: arbitration + link kernels); bit-identical by contract.
    kernel: Optional[str] = None

    def __post_init__(self) -> None:
        if self.traffic not in TRAFFIC_PATTERNS:
            raise ValueError(
                f"traffic must be one of {TRAFFIC_PATTERNS}, got {self.traffic!r}"
            )
        if self.offered_load <= 0:
            raise ValueError("offered_load must be positive (zero load offers no packets)")
        if self.packet_bits <= 0:
            raise ValueError("packet_bits must be positive")
        if self.stack_dies < 2:
            raise ValueError("stack_dies must be at least 2")
        if not 0.0 <= self.hotspot_fraction <= 1.0:
            raise ValueError("hotspot_fraction must be within [0, 1]")

    @property
    def slots_per_packet(self) -> int:
        """PPM symbol slots one packet (header + payload) occupies."""
        # Imported lazily like every noc reference in this module (the noc
        # package imports this package's randomness module at import time).
        from repro.noc.packet import Packet

        total_bits = Packet.header_bit_count() + self.packet_bits
        return -(-total_bits // self.config.ppm_bits)

    def _destinations(
        self, generator: np.random.Generator, sources: np.ndarray, nodes: int
    ) -> np.ndarray:
        """Per-packet destinations under the configured traffic pattern."""
        # Uniform over the other nodes — the base draw of every pattern.
        offsets = generator.integers(1, nodes, size=sources.size)
        uniform = (sources + offsets) % nodes
        if self.traffic == "uniform":
            return uniform
        if self.traffic == "hotspot":
            hot = generator.random(sources.size) < self.hotspot_fraction
            return np.where(hot & (sources != 0), 0, uniform)
        # nearest-neighbour: the die directly above (below at the stack top);
        # interior dies pick a side at random.
        up = generator.integers(0, 2, size=sources.size).astype(bool)
        up |= sources == 0
        up &= sources != nodes - 1
        return np.where(up, sources + 1, sources - 1)

    def __call__(self, generator: np.random.Generator, count: int) -> np.ndarray:
        # Imported lazily for the same circularity reason as LinkBatchTrial.
        from repro.noc.bus import OpticalBus
        from repro.noc.packet import Packet
        from repro.noc.topology import StackTopology
        from repro.photonics.stack import DieStack

        if count > 1 << Packet.SEQUENCE_BITS:
            raise ValueError(
                f"a chunk of {count} packets overflows the {Packet.SEQUENCE_BITS}-bit "
                f"sequence numbers used to match outcomes; lower chunk_size"
            )
        bus_seed = int(generator.integers(0, 2**31))
        stack = DieStack.uniform(
            count=self.stack_dies,
            thickness=self.stack_thickness,
            wavelength=self.config.wavelength,
        )
        topology = StackTopology(stack, nodes_per_die=self.nodes_per_die)
        emitted = (
            self.emitted_photons
            if self.emitted_photons is not None
            else self.config.mean_detected_photons
        )
        bus = OpticalBus(
            topology,
            config=self.config,
            emitted_photons=emitted,
            seed=bus_seed,
            backend=self.backend,
            epoch_packets=self.epoch_packets,
            kernel=self.kernel,
        )
        nodes = topology.node_count
        sources = generator.integers(0, nodes, size=count)
        destinations = self._destinations(generator, sources, nodes)
        payloads = generator.integers(0, 2, size=(count, self.packet_bits))
        horizon = max(1, math.ceil(count * self.slots_per_packet / self.offered_load))
        arrivals = generator.integers(0, horizon, size=count)
        for index in np.argsort(arrivals, kind="stable"):
            index = int(index)
            bus.offer(
                Packet(
                    source=int(sources[index]),
                    destination=int(destinations[index]),
                    payload=payloads[index].tolist(),
                    sequence=index,
                ),
                arrival_slot=int(arrivals[index]),
            )
        bus.run(max_slots=horizon + (count + 1) * self.slots_per_packet)
        latencies = np.full(count, np.nan)
        for outcome in bus.outcomes:
            if outcome.delivered:
                latencies[outcome.packet.sequence] = outcome.latency
        if self.on_result is not None:
            self.on_result(bus)
        return latencies


def link_symbol_error_trial(
    config,
    backend: Optional[str] = None,
    channel=None,
    channels: Optional[int] = None,
    crosstalk=None,
) -> Callable:
    """:func:`link_batch_trial` with the symbol-error-indicator reduction.

    >>> from repro.core.config import LinkConfig
    >>> from repro.analysis.units import NS
    >>> config = LinkConfig(slot_duration=4 * NS, mean_detected_photons=200.0)
    >>> trial = link_symbol_error_trial(config, backend="batch")
    >>> MonteCarloRunner(seed=7).run_batch(trial, trials=64, chunk_size=32).mean < 0.1
    True

    Channel-aware experiments pass ``channels=`` (and optionally a
    ``crosstalk`` model) together with a multichannel backend:

    >>> trial = link_symbol_error_trial(config, backend="multichannel", channels=8)
    >>> MonteCarloRunner(seed=7).run_batch(trial, trials=64, chunk_size=32).mean < 0.1
    True
    """
    return link_batch_trial(
        config, backend=backend, channel=channel, channels=channels, crosstalk=crosstalk
    )


class MonteCarloRunner:
    """Runs a trial function over many independent seeds.

    The trial function receives a :class:`RandomSource` and returns either a
    scalar or a ``(scalar, metadata_dict)`` pair.
    """

    def __init__(self, seed: int = 0, label: str = "montecarlo") -> None:
        self._seed = seed
        self._label = label

    def run(
        self,
        trial: Callable[[RandomSource], object],
        trials: int,
        progress: Optional[Callable[[int, float], None]] = None,
    ) -> MonteCarloResult:
        """Execute ``trials`` independent repetitions of ``trial``.

        Parameters
        ----------
        trial:
            Callable invoked with a fresh :class:`RandomSource` per repetition.
        trials:
            Number of repetitions (must be positive).
        progress:
            Optional callback ``(trial_index, value)`` invoked after each trial.
        """
        if trials <= 0:
            raise ValueError(f"trials must be positive, got {trials}")
        values = np.empty(trials, dtype=float)
        metadata: List[dict] = []
        for index in range(trials):
            source = RandomSource(split_seed(self._seed, f"{self._label}:{index}"))
            outcome = trial(source)
            if isinstance(outcome, tuple):
                value, info = outcome
                metadata.append(dict(info))
            else:
                value = outcome
                metadata.append({})
            values[index] = float(value)
            if progress is not None:
                progress(index, float(value))
        return MonteCarloResult(samples=values, metadata=metadata)

    def run_batch(
        self,
        batch_trial: Callable[[np.random.Generator, int], np.ndarray],
        trials: int,
        chunk_size: int = 4096,
        progress: Optional[Callable[[int, int], None]] = None,
        first_trial: int = 0,
    ) -> MonteCarloResult:
        """Execute ``trials`` repetitions through a *vectorised* trial function.

        Parameters
        ----------
        batch_trial:
            Callable ``(generator, count) -> array`` returning one scalar
            outcome per trial, shape ``(count,)``.  The generator is freshly
            seeded per chunk (seeds pre-split via :func:`split_seed`), so no
            per-trial :class:`RandomSource` is ever constructed.
        trials:
            Total number of repetitions (must be positive).
        chunk_size:
            Maximum number of trials evaluated per call.  Chunking bounds peak
            memory for array-valued trials and fixes the seeding layout:
            results are reproducible for a given ``(seed, chunk_size)``.
        progress:
            Optional callback ``(trials_done, trials_total)`` invoked after
            each chunk.
        first_trial:
            Absolute index of the first trial: chunk seeds derive from the
            *absolute* trial offset, so a run continued from ``first_trial``
            (a multiple of ``chunk_size``) reproduces exactly the chunks a
            single longer run would have evaluated — the layout adaptive
            budgets and resume rely on.
        """
        if trials <= 0:
            raise ValueError(f"trials must be positive, got {trials}")
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if first_trial < 0:
            raise ValueError(f"first_trial must be non-negative, got {first_trial}")
        values = np.empty(trials, dtype=float)
        for start in range(0, trials, chunk_size):
            count = min(chunk_size, trials - start)
            seed = split_seed(self._seed, f"{self._label}:batch:{first_trial + start}")
            generator = np.random.default_rng(seed)
            chunk = np.asarray(batch_trial(generator, count), dtype=float)
            if chunk.shape != (count,):
                raise ValueError(
                    f"batch_trial must return shape ({count},), got {chunk.shape}"
                )
            values[start : start + count] = chunk
            if progress is not None:
                progress(start + count, trials)
        return MonteCarloResult(samples=values)

    def estimate_probability(
        self,
        predicate: Callable[[RandomSource], bool],
        trials: int,
    ) -> float:
        """Estimate ``P(predicate)`` by simple Monte-Carlo counting."""
        result = self.run(lambda source: 1.0 if predicate(source) else 0.0, trials)
        return result.mean

    def sweep(
        self,
        trial_factory: Callable[[float], Callable[[RandomSource], object]],
        parameter_values: Sequence[float],
        trials_per_point: int,
    ) -> Dict[float, MonteCarloResult]:
        """Run a Monte-Carlo experiment at each parameter value."""
        results: Dict[float, MonteCarloResult] = {}
        for value in parameter_values:
            runner = MonteCarloRunner(
                seed=split_seed(self._seed, f"{self._label}:param:{value}"),
                label=f"{self._label}:{value}",
            )
            results[value] = runner.run(trial_factory(value), trials_per_point)
        return results
