"""Bit/symbol utilities and the PPM slot grid.

A PPM symbol of order ``K`` occupies ``2**K`` slots; the slot grid maps slot
indices to the pulse emission times inside the measurement window and back.
The paper requires the total allotted range R to exceed the SPAD detection
cycle, so the grid also tracks the guard (reset) interval appended after the
data slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


def int_to_bits(value: int, width: int) -> List[int]:
    """Big-endian bit vector of ``value`` using exactly ``width`` bits.

    >>> int_to_bits(5, 4)
    [0, 1, 0, 1]
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    if value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return [(value >> shift) & 1 for shift in range(width - 1, -1, -1)]


def bits_to_int(bits: Sequence[int]) -> int:
    """Big-endian bit vector to integer.

    >>> bits_to_int([0, 1, 0, 1])
    5
    """
    if len(bits) == 0:
        raise ValueError("bits must be non-empty")
    value = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"bits must be 0 or 1, got {bit}")
        value = (value << 1) | bit
    return value


def ints_to_bit_matrix(values: np.ndarray, width: int) -> np.ndarray:
    """Vectorised :func:`int_to_bits`: one big-endian row of ``width`` bits per value.

    >>> ints_to_bit_matrix(np.array([5, 1]), 4).tolist()
    [[0, 1, 0, 1], [0, 0, 0, 1]]
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    values = np.asarray(values, dtype=np.int64)
    if values.size and (values.min() < 0 or values.max() >= (1 << width)):
        raise ValueError(f"values must lie within [0, 2^{width})")
    shifts = np.arange(width - 1, -1, -1, dtype=np.int64)
    return ((values[:, None] >> shifts) & 1).astype(np.int64)


def bit_matrix_to_ints(bits: np.ndarray) -> np.ndarray:
    """Vectorised :func:`bits_to_int` over the rows of a big-endian bit matrix.

    >>> bit_matrix_to_ints(np.array([[0, 1, 0, 1], [0, 0, 0, 1]])).tolist()
    [5, 1]
    """
    bits = np.asarray(bits, dtype=np.int64)
    if bits.ndim != 2 or bits.shape[1] == 0:
        raise ValueError("bits must be a 2-D matrix with at least one column")
    if bits.size and not np.isin(bits, (0, 1)).all():
        raise ValueError("bits must be 0 or 1")
    width = bits.shape[1]
    weights = 1 << np.arange(width - 1, -1, -1, dtype=np.int64)
    return bits @ weights


def count_bit_errors(sent: Sequence[int], received: Sequence[int]) -> int:
    """Number of positions where the two bit streams disagree.

    The shared metric primitive behind ``TransmissionResult.bit_errors`` and
    the scenario metric registry — one vectorised comparison instead of a
    Python loop over payload positions.

    >>> count_bit_errors([0, 1, 1, 0], [0, 1, 0, 0])
    1
    """
    sent_arr = np.asarray(sent)
    received_arr = np.asarray(received)
    if sent_arr.shape != received_arr.shape:
        raise ValueError(
            f"bit streams must have the same length, got {sent_arr.size} and {received_arr.size}"
        )
    return int(np.count_nonzero(sent_arr != received_arr))


def count_symbol_errors(sent: Sequence[int], received: Sequence[int], bits_per_symbol: int) -> int:
    """Number of ``bits_per_symbol``-wide groups containing at least one bit error.

    Both streams must hold a whole number of symbols.

    >>> count_symbol_errors([0, 1, 1, 0], [0, 1, 0, 1], 2)
    1
    """
    if bits_per_symbol <= 0:
        raise ValueError(f"bits_per_symbol must be positive, got {bits_per_symbol}")
    sent_arr = np.asarray(sent)
    received_arr = np.asarray(received)
    if sent_arr.shape != received_arr.shape:
        raise ValueError(
            f"bit streams must have the same length, got {sent_arr.size} and {received_arr.size}"
        )
    if sent_arr.size % bits_per_symbol:
        raise ValueError(
            f"stream length {sent_arr.size} is not a whole number of {bits_per_symbol}-bit symbols"
        )
    mismatches = (sent_arr != received_arr).reshape(-1, bits_per_symbol)
    return int(np.count_nonzero(np.any(mismatches, axis=1)))


@dataclass(frozen=True)
class SlotGrid:
    """Timing grid of one PPM symbol.

    Attributes
    ----------
    bits_per_symbol:
        K — number of bits carried per pulse.
    slot_duration:
        Width of one time slot [s] (sets the required TDC resolution).
    guard_time:
        Reset/guard interval appended after the last slot [s] (the paper's
        "TDC dead time"/reset window, and the slack that lets the SPAD recover).
    """

    bits_per_symbol: int
    slot_duration: float
    guard_time: float = 0.0

    def __post_init__(self) -> None:
        if self.bits_per_symbol <= 0:
            raise ValueError("bits_per_symbol must be positive")
        if self.slot_duration <= 0:
            raise ValueError("slot_duration must be positive")
        if self.guard_time < 0:
            raise ValueError("guard_time must be non-negative")

    @property
    def slot_count(self) -> int:
        """Number of data slots (2^K)."""
        return 1 << self.bits_per_symbol

    @property
    def data_window(self) -> float:
        """Duration of the data slots only [s]."""
        return self.slot_count * self.slot_duration

    @property
    def symbol_duration(self) -> float:
        """Total allotted range R: data slots plus guard [s]."""
        return self.data_window + self.guard_time

    @property
    def raw_bit_rate(self) -> float:
        """Bits per second when symbols are sent back to back."""
        return self.bits_per_symbol / self.symbol_duration

    def slot_start(self, slot: int) -> float:
        """Start time of ``slot`` within the symbol [s]."""
        if not 0 <= slot < self.slot_count:
            raise ValueError(f"slot must be within [0, {self.slot_count}), got {slot}")
        return slot * self.slot_duration

    def slot_center(self, slot: int) -> float:
        """Centre time of ``slot`` within the symbol [s]."""
        return self.slot_start(slot) + self.slot_duration / 2.0

    def slot_of_time(self, time: float) -> int:
        """Slot index containing ``time``; times in the guard interval map to the last slot.

        Raises :class:`ValueError` for times outside the symbol range.
        """
        if time < 0 or time >= self.symbol_duration:
            raise ValueError(
                f"time {time} outside the symbol range [0, {self.symbol_duration})"
            )
        if time >= self.data_window:
            return self.slot_count - 1
        return int(time / self.slot_duration)

    def slots_of_times(self, times: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`slot_of_time` over an array of arrival times."""
        times = np.asarray(times, dtype=float)
        if times.size and (times.min() < 0 or times.max() >= self.symbol_duration):
            raise ValueError(
                f"times must lie within the symbol range [0, {self.symbol_duration})"
            )
        slots = np.minimum(
            (times / self.slot_duration).astype(np.int64), self.slot_count - 1
        )
        return np.where(times >= self.data_window, self.slot_count - 1, slots)

    def with_guard(self, guard_time: float) -> "SlotGrid":
        """Copy of the grid with a different guard interval."""
        return SlotGrid(
            bits_per_symbol=self.bits_per_symbol,
            slot_duration=self.slot_duration,
            guard_time=guard_time,
        )
