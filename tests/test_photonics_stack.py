"""Tests for repro.photonics.stack and microoptics."""

import math

import numpy as np
import pytest

from repro.analysis.units import NM, UM
from repro.photonics.microoptics import MicroLens, coupling_efficiency
from repro.photonics.stack import DieLayer, DieStack


class TestDieLayer:
    def test_validation(self):
        with pytest.raises(ValueError):
            DieLayer(name="", thickness=25 * UM)
        with pytest.raises(ValueError):
            DieLayer(name="die", thickness=0.0)
        with pytest.raises(ValueError):
            DieLayer(name="die", interface_transmission=0.0)


class TestDieStack:
    def test_uniform_constructor(self):
        stack = DieStack.uniform(count=5, thickness=20 * UM)
        assert stack.die_count == 5
        assert stack.total_thickness() == pytest.approx(100 * UM)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            DieStack([DieLayer(name="a"), DieLayer(name="a")])
        with pytest.raises(ValueError):
            DieStack([])

    def test_layer_index_lookup(self):
        stack = DieStack([DieLayer(name="cpu"), DieLayer(name="mem")])
        assert stack.layer_index("mem") == 1
        with pytest.raises(KeyError):
            stack.layer_index("gpu")

    def test_adjacent_dies_have_no_intermediate_absorption(self):
        stack = DieStack.uniform(count=4, wavelength=850 * NM)
        adjacent = stack.transmission(0, 1)
        far = stack.transmission(0, 3)
        assert far < adjacent
        # Adjacent transmission only pays the end-face Fresnel losses.
        assert adjacent == pytest.approx(stack.transmission(2, 3))

    def test_transmission_symmetric_and_self_unity(self):
        stack = DieStack.uniform(count=6)
        assert stack.transmission(1, 4) == pytest.approx(stack.transmission(4, 1))
        assert stack.transmission(2, 2) == 1.0

    def test_transmission_profile_monotone_from_source(self):
        stack = DieStack.uniform(count=8, wavelength=850 * NM)
        profile = stack.transmission_profile(source=0)
        assert profile[0] == 1.0
        assert np.all(np.diff(profile[1:]) <= 0)

    def test_longer_wavelength_transmits_deeper(self):
        red = DieStack.uniform(count=10, wavelength=650 * NM)
        nir = DieStack.uniform(count=10, wavelength=950 * NM)
        assert nir.worst_case_transmission() > red.worst_case_transmission()

    def test_thinner_dies_transmit_deeper(self):
        thin = DieStack.uniform(count=10, thickness=10 * UM, wavelength=850 * NM)
        thick = DieStack.uniform(count=10, thickness=50 * UM, wavelength=850 * NM)
        assert thin.worst_case_transmission() > thick.worst_case_transmission()

    def test_max_reachable_dies_consistent_with_transmission(self):
        stack = DieStack.uniform(count=2, thickness=10 * UM, wavelength=1050 * NM)
        depth = stack.max_reachable_dies(minimum_transmission=1e-3)
        assert depth >= 2
        probe = DieStack.uniform(count=depth, thickness=10 * UM, wavelength=1050 * NM)
        assert probe.worst_case_transmission() >= 1e-3 * 0.5  # within a die of the threshold

    def test_index_bounds(self):
        stack = DieStack.uniform(count=3)
        with pytest.raises(IndexError):
            stack.transmission(0, 5)
        with pytest.raises(IndexError):
            stack.layer_transmission(9)


class TestMicroOptics:
    def test_numerical_aperture(self):
        lens = MicroLens(diameter=30e-6, focal_length=60e-6)
        assert lens.numerical_aperture == pytest.approx(math.sin(math.atan(0.25)), rel=1e-6)

    def test_lens_improves_coupling_at_distance(self):
        without = coupling_efficiency(10e-6, 8e-6, distance=500e-6, lens=None)
        with_lens = coupling_efficiency(10e-6, 8e-6, distance=500e-6, lens=MicroLens())
        assert with_lens > without

    def test_coupling_decreases_with_distance(self):
        near = coupling_efficiency(10e-6, 8e-6, distance=10e-6)
        far = coupling_efficiency(10e-6, 8e-6, distance=1000e-6)
        assert far < near <= 1.0

    def test_zero_distance_capped_at_unity(self):
        assert coupling_efficiency(5e-6, 50e-6, distance=0.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            coupling_efficiency(0.0, 8e-6, 10e-6)
        with pytest.raises(ValueError):
            coupling_efficiency(10e-6, 8e-6, -1.0)
        with pytest.raises(ValueError):
            coupling_efficiency(10e-6, 8e-6, 1e-6, emission_half_angle=2.0)
        with pytest.raises(ValueError):
            MicroLens(diameter=0.0)
        with pytest.raises(ValueError):
            MicroLens().collimation_half_angle(0.0)
