"""Durable experiment artefacts: a content-addressed report store.

A :class:`ReportStore` is a directory of JSON artefacts, one per persisted
:class:`~repro.scenarios.runner.ExperimentReport` — the ``BENCH_*.json``
pattern generalised to every experiment.  Artefact ids are human-readable
*and* content-addressed::

    <scenario-name>__<backend>__seed<seed>__<digest>.json

where ``digest`` is a SHA-256 prefix of the report's canonical JSON, so the
same experiment (same scenario, seed, backend, *and* results) always lands on
the same file — saving twice is idempotent — while any drift in the numbers
produces a new artefact sitting next to the old one for longitudinal
comparison (:meth:`ReportStore.compare`).

Artefacts are self-describing envelopes (format tag, artefact id, save
timestamp, report mapping) and load back into full
:class:`~repro.scenarios.runner.ExperimentReport` values via
:meth:`ReportStore.load`.

>>> import tempfile
>>> from repro.scenarios import ExperimentRunner, get_scenario
>>> report = ExperimentRunner(get_scenario("ber-vs-photons").with_budget(128), seed=1).run()
>>> store = ReportStore(tempfile.mkdtemp())
>>> artifact = store.save(report)
>>> store.load(artifact.stem) == report
True
>>> store.list() == [artifact.stem]
True
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.scenarios.runner import ExperimentReport

#: Format tag written into every artefact envelope; bumped on layout changes.
ARTIFACT_FORMAT = "repro-report-v1"

#: Format tag of checkpoint files (JSONL, one completed point per line).
CHECKPOINT_FORMAT = "repro-checkpoint-v1"

#: Format tag of run-index entries (run key -> completed artefact id).
RUN_INDEX_FORMAT = "repro-run-index-v1"

_DIGEST_CHARS = 12

#: Distinguishes scratch files of concurrent saves from the *same* process
#: (the pid alone would collide); combined with the pid for cross-process
#: uniqueness.
_SCRATCH_COUNTER = itertools.count()


class CorruptArtifactError(ValueError):
    """An artefact on disk is damaged: truncated, foreign, or digest-mismatched.

    Subclasses :class:`ValueError`, so pre-existing ``except ValueError``
    call sites (and the CLI's error mapping) keep working; ``path`` names
    the offending file so tooling can :meth:`ReportStore.quarantine` it.
    """

    def __init__(self, message: str, path: Optional[Path] = None) -> None:
        super().__init__(message)
        self.path = path


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry to disk (crash safety of the rename itself).

    Best effort: not every platform/filesystem lets directories be opened
    for fsync, and a failure here only narrows the crash window, never
    correctness (the artefact content was already fsynced).
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform dependent
        pass
    finally:
        os.close(fd)


def _canonical_json(mapping: Mapping[str, Any]) -> str:
    """Canonical (compact, key-sorted) JSON — the *hashing* form only.

    Artefact files themselves are stored indented for human diffing; to
    verify a digest by hand, re-serialise the loaded report mapping through
    this form, not the bytes on disk.
    """
    return json.dumps(mapping, sort_keys=True, separators=(",", ":"))


def report_digest(report: ExperimentReport) -> str:
    """Content digest of a report (SHA-256 prefix of its canonical JSON)."""
    payload = _canonical_json(report.to_mapping()).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:_DIGEST_CHARS]


def run_digest(
    scenario: Union[Mapping[str, Any], Any],
    backend: str,
    seed: int,
    chunk_symbols: int,
) -> str:
    """The *run key*: a digest of everything a report is deterministic in.

    Reports are a pure function of ``(scenario, backend, seed,
    chunk_symbols)`` — never of the executor, worker count or retries — so
    this key can be computed **before** running anything and used to answer
    "has this exact experiment already been simulated?".  It is the key of
    the store's run index (:meth:`ReportStore.find_run`), of in-flight
    dedupe in :mod:`repro.service`, and of resume checkpoints
    (:meth:`ReportStore.run_checkpoint`).

    ``scenario`` is a scenario mapping (or anything with ``to_mapping()``,
    e.g. a :class:`~repro.scenarios.scenario.Scenario`).

    >>> from repro.scenarios import get_scenario
    >>> key = run_digest(get_scenario("ber-vs-photons"), "batch", 0, 8192)
    >>> len(key), key == run_digest(get_scenario("ber-vs-photons"), "batch", 0, 8192)
    (12, True)
    >>> key == run_digest(get_scenario("ber-vs-photons"), "batch", 1, 8192)
    False
    """
    if hasattr(scenario, "to_mapping"):
        scenario = scenario.to_mapping()
    key = {
        "scenario": dict(scenario),
        "backend": backend,
        "seed": seed,
        "chunk_symbols": chunk_symbols,
    }
    digest = hashlib.sha256(_canonical_json(key).encode("utf-8")).hexdigest()
    return digest[:_DIGEST_CHARS]


def artifact_id(report: ExperimentReport) -> str:
    """The report's content-addressed artefact id (without ``.json``).

    The id doubles as a file name inside the flat store directory, so names
    that would traverse or nest paths are rejected rather than silently
    writing outside the store (or into directories that do not exist).
    """
    for label, value in (("scenario name", report.name), ("backend name", report.backend)):
        if any(sep in value for sep in ("/", "\\")) or value.startswith("."):
            raise ValueError(
                f"{label} {value!r} cannot be stored: artefact ids are flat "
                f"file names (no path separators, no leading dot)"
            )
    if "__" in report.backend:
        # list()/latest() parse ids with rsplit("__", 3): scenario names may
        # contain the separator (they sit left of the last three), backend
        # names may not.
        raise ValueError(
            f"backend name {report.backend!r} cannot be stored: artefact ids "
            f"reserve '__' as the field separator right of the scenario name"
        )
    return f"{report.name}__{report.backend}__seed{report.seed}__{report_digest(report)}"


class ReportStore:
    """A directory of persisted experiment reports.

    Parameters
    ----------
    root:
        Store directory; created on first :meth:`save`.  The store is flat —
        artefact ids are unique by construction (scenario name, backend, seed
        and content digest are all part of the id).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # -- writing ---------------------------------------------------------------
    def save(self, report: ExperimentReport, run_key: Optional[str] = None) -> Path:
        """Persist ``report``; returns the artefact path.

        Idempotent: an artefact with identical content is overwritten in
        place (same id), never duplicated.

        ``run_key`` (see :meth:`digest_for`) additionally records the run
        index entry ``run_key -> artefact id``, making the completed run an
        O(1) cache hit for :meth:`find_run` — the dedupe path of the
        experiment service and of ``repro probe``.
        """
        if not isinstance(report, ExperimentReport):
            raise TypeError(f"can only store ExperimentReport values, got {report!r}")
        self.root.mkdir(parents=True, exist_ok=True)
        name = artifact_id(report)
        envelope = {
            "format": ARTIFACT_FORMAT,
            "artifact": name,
            "saved_unix": time.time(),
            "report": report.to_mapping(),
        }
        path = self.root / f"{name}.json"
        # Atomic and durable: an interrupted run (Ctrl-C, OOM, power loss)
        # must never leave a truncated artefact behind — write aside, flush
        # to disk, then rename into place.  A crash before the rename leaves
        # only a dot-prefixed scratch file, which list()/load()/latest()
        # never see; concurrent saves of the same id are last-writer-wins
        # (each writes its own scratch, renames are atomic), never
        # interleaved.
        scratch = self.root / f".{name}.tmp-{os.getpid()}-{next(_SCRATCH_COUNTER)}"
        with open(scratch, "w") as handle:
            handle.write(json.dumps(envelope, sort_keys=True, indent=2))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(scratch, path)
        _fsync_directory(self.root)
        if run_key is not None:
            self._record_run(run_key, name)
        return path

    # -- run index ---------------------------------------------------------------
    def digest_for(
        self,
        scenario: Union[Mapping[str, Any], Any],
        backend: str,
        seed: int,
        chunk_symbols: int,
    ) -> str:
        """The artefact cache key for a run, computed *without* running it.

        A thin store-level handle on :func:`run_digest`; pair it with
        :meth:`find_run` to probe whether this exact experiment already has
        a completed artefact.
        """
        return run_digest(scenario, backend, seed, chunk_symbols)

    def _run_index_path(self, run_key: str) -> Path:
        return self.root / "index" / f"{run_key}.json"

    def _record_run(self, run_key: str, artifact: str) -> None:
        """Durably map ``run_key`` to a completed artefact id (atomic write)."""
        index_dir = self.root / "index"
        index_dir.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": RUN_INDEX_FORMAT,
            "run": run_key,
            "artifact": artifact,
            "saved_unix": time.time(),
        }
        scratch = index_dir / f".{run_key}.tmp-{os.getpid()}-{next(_SCRATCH_COUNTER)}"
        scratch.write_text(json.dumps(entry, sort_keys=True, indent=2))
        os.replace(scratch, self._run_index_path(run_key))

    def find_run(self, run_key: str) -> Optional[str]:
        """Artefact id of the completed run with this key, or ``None``.

        Tolerant by construction: a missing/corrupt index entry, or an entry
        whose artefact was since deleted or quarantined, reads as a cache
        miss (re-running lands on the same artefact id and re-records the
        entry), never as an error.
        """
        path = self._run_index_path(run_key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("format") != RUN_INDEX_FORMAT
            or entry.get("run") != run_key
            or not isinstance(entry.get("artifact"), str)
        ):
            return None
        artifact = entry["artifact"]
        if not (self.root / f"{artifact}.json").is_file():
            return None
        return artifact

    # -- reading ---------------------------------------------------------------
    def _resolve(self, ref: Union[str, Path]) -> Path:
        """Resolve an artefact reference: id, id + ``.json``, or a path."""
        candidate = Path(ref)
        if candidate.is_file():
            return candidate
        name = str(ref)
        if not name.endswith(".json"):
            name = f"{name}.json"
        path = self.root / name
        if path.is_file():
            return path
        known = ", ".join(self.list()) or "<empty store>"
        raise FileNotFoundError(
            f"no artefact {str(ref)!r} in store {self.root}; available: {known}"
        )

    def read_envelope(self, ref: Union[str, Path]) -> Dict[str, Any]:
        """The raw artefact envelope (format, artefact id, timestamp, report).

        Verifies the envelope end to end — valid JSON, the expected format
        tag, a report payload, and the content digest embedded in the
        artefact id matching a recomputation over the payload — and raises
        :class:`CorruptArtifactError` (a :class:`ValueError`) naming the
        file otherwise.  Truncated writes, bit rot, and hand-edited
        artefacts all surface here instead of as downstream surprises.
        """
        path = self._resolve(ref)
        try:
            envelope = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise CorruptArtifactError(
                f"artefact {path} is not valid JSON: {error}", path=path
            ) from error
        if not isinstance(envelope, dict) or envelope.get("format") != ARTIFACT_FORMAT:
            raise CorruptArtifactError(
                f"artefact {path} is not a {ARTIFACT_FORMAT} envelope "
                f"(format={envelope.get('format') if isinstance(envelope, dict) else None!r})",
                path=path,
            )
        if not isinstance(envelope.get("report"), dict):
            raise CorruptArtifactError(
                f"artefact {path} carries no report payload", path=path
            )
        artifact = envelope.get("artifact")
        parts = artifact.rsplit("__", 3) if isinstance(artifact, str) else []
        if len(parts) != 4:
            raise CorruptArtifactError(
                f"artefact {path} has no well-formed artefact id "
                f"(artifact={artifact!r})",
                path=path,
            )
        payload = _canonical_json(envelope["report"]).encode("utf-8")
        actual = hashlib.sha256(payload).hexdigest()[:_DIGEST_CHARS]
        if actual != parts[3]:
            raise CorruptArtifactError(
                f"artefact {path} failed digest verification: id says {parts[3]}, "
                f"payload hashes to {actual} — the report content was altered "
                f"after it was saved",
                path=path,
            )
        return envelope

    def quarantine(self, ref: Union[str, Path]) -> Path:
        """Move a (typically corrupt) artefact aside, out of the store's view.

        The file lands in ``<root>/quarantine/`` under its original name;
        :meth:`list`, :meth:`latest` and :meth:`load` no longer see it.
        Returns the new path.
        """
        path = self._resolve(ref)
        refuge = self.root / "quarantine"
        refuge.mkdir(parents=True, exist_ok=True)
        target = refuge / path.name
        os.replace(path, target)
        return target

    def load(self, ref: Union[str, Path]) -> ExperimentReport:
        """Load an artefact back into an :class:`ExperimentReport`."""
        return ExperimentReport.from_mapping(self.read_envelope(ref)["report"])

    def list(self, scenario: Optional[str] = None) -> List[str]:
        """Sorted artefact ids, optionally restricted to one scenario name.

        The scenario name is everything before the trailing
        ``__<backend>__seed<seed>__<digest>`` triple, so names containing
        ``__`` filter correctly.
        """
        if not self.root.is_dir():
            return []
        # Structural filter: a real artefact id always has the trailing
        # __<backend>__seed<seed>__<digest> triple, so foreign .json files in
        # the (user-facing) store directory never masquerade as artefacts.
        ids = [
            path.stem
            for path in self.root.glob("*.json")
            if len(path.stem.rsplit("__", 3)) == 4
        ]
        if scenario is not None:
            ids = [name for name in ids if name.rsplit("__", 3)[0] == scenario]
        return sorted(ids)

    def latest(
        self,
        scenario: Optional[str] = None,
        backend: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> Optional[str]:
        """Id of the most recently saved matching artefact (``None`` if none).

        Recency is the envelope's save timestamp (artefact id as a
        deterministic tie-break), so longitudinal tooling can always diff
        "current run" against "last recorded run".
        """
        best: Optional[Tuple[float, str]] = None
        for name in self.list(scenario):
            # Backend and seed are encoded in the id, so non-matching (and
            # foreign) files are skipped without parsing their JSON.
            parts = name.rsplit("__", 3)
            if len(parts) != 4:
                continue
            if backend is not None and parts[1] != backend:
                continue
            if seed is not None and parts[2] != f"seed{seed}":
                continue
            try:
                envelope = self.read_envelope(name)
            except ValueError:
                # A stray/corrupt .json in the store directory (the default
                # store is a user-facing ./artifacts) must not break the scan.
                continue
            key = (float(envelope.get("saved_unix", 0.0)), name)
            if best is None or key > best:
                best = key
        return None if best is None else best[1]

    # -- longitudinal comparison -----------------------------------------------
    def compare(
        self,
        ref_a: Union[str, Path],
        ref_b: Union[str, Path],
        metric: str,
    ) -> Dict[str, Any]:
        """Per-point deltas of one metric between two artefacts.

        Points are matched by their parameter values; the result records the
        metric value in each run and ``delta = b - a`` for every point present
        in both, plus the points only one run has (grid drift shows up
        instead of silently vanishing).
        """
        report_a = self.load(ref_a)
        report_b = self.load(ref_b)

        def keyed(report: ExperimentReport):
            return {
                tuple(sorted(point.parameters.items())): point
                for point in report.points
            }

        points_a, points_b = keyed(report_a), keyed(report_b)
        shared = [key for key in points_a if key in points_b]
        rows: List[Dict[str, Any]] = []
        for key in shared:
            a, b = points_a[key].metric(metric), points_b[key].metric(metric)
            rows.append(
                {
                    "parameters": dict(key),
                    "a": a,
                    "b": b,
                    "delta": b - a,
                }
            )
        return {
            "metric": metric,
            "scenario_a": report_a.name,
            "scenario_b": report_b.name,
            "points": rows,
            "only_a": [dict(key) for key in points_a if key not in points_b],
            "only_b": [dict(key) for key in points_b if key not in points_a],
        }

    # -- crash recovery ----------------------------------------------------------
    def run_checkpoint(
        self,
        scenario: Mapping[str, Any],
        backend: str,
        seed: int,
        chunk_symbols: int,
    ) -> "RunCheckpoint":
        """The incremental checkpoint for one exact run of an experiment.

        Keyed by everything a report is deterministic in — the scenario
        mapping, backend, seed, and ``chunk_symbols`` — so a checkpoint can
        only ever resume the *same* run: change any input and the key (hence
        the file) differs, and stale recorded points can never leak into a
        different experiment.
        """
        run_key = run_digest(scenario, backend, seed, chunk_symbols)
        name = str(scenario.get("name", "experiment"))
        safe = name if not any(sep in name for sep in ("/", "\\")) else "experiment"
        path = self.root / "checkpoints" / f"{safe}__{backend}__seed{seed}__{run_key}.jsonl"
        return RunCheckpoint(path, run_key)

    def __repr__(self) -> str:
        return f"ReportStore({str(self.root)!r})"


class RunCheckpoint:
    """Append-only JSONL journal of one run's completed points.

    Line 1 is a header (``{"format": ..., "run": <key>}``); every following
    line is ``{"index": <grid index>, "point": <ExperimentPoint mapping>}``.
    Appends are flushed and fsynced, so a killed run loses at most the point
    that was mid-write — and :meth:`load` tolerates exactly that: a torn
    final line is ignored rather than poisoning the resume.

    Adaptive-budget runs additionally journal *partial rounds*:
    ``{"index": <grid index>, "partial": <accumulated outcome mapping>}``
    lines record a point's cumulative Monte-Carlo state after each
    unconverged round (see :meth:`append_partial` / :meth:`load_partials`),
    so a resumed run continues from the last finished round instead of
    re-simulating it.  Partial lines carry no ``"point"`` key, so
    :meth:`load` — and therefore any pre-adaptive reader — skips them.
    """

    def __init__(self, path: Path, run_key: str) -> None:
        self.path = Path(path)
        self.run_key = run_key

    def exists(self) -> bool:
        return self.path.is_file()

    def load(self) -> Dict[int, Mapping[str, Any]]:
        """Recorded points by grid index (empty for a missing/foreign file)."""
        if not self.path.is_file():
            return {}
        lines = self.path.read_text().splitlines()
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            return {}
        if (
            not isinstance(header, dict)
            or header.get("format") != CHECKPOINT_FORMAT
            or header.get("run") != self.run_key
        ):
            # A different format or another run's key: refuse to resume from
            # it rather than mixing experiments.
            return {}
        points: Dict[int, Mapping[str, Any]] = {}
        for line in lines[1:]:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                # Torn tail of a killed run — everything before it is intact.
                break
            if (
                isinstance(entry, dict)
                and isinstance(entry.get("index"), int)
                and isinstance(entry.get("point"), dict)
            ):
                points[entry["index"]] = entry["point"]
        return points

    def load_partials(self) -> Dict[int, Mapping[str, Any]]:
        """Last recorded partial round per grid index (adaptive resume).

        Each partial line carries the point's *cumulative* accumulated
        outcome, so only the latest one per index matters.  Indices that
        later completed (a ``"point"`` line exists) are excluded — their
        partial history is superseded.  Header/torn-tail tolerance matches
        :meth:`load`.
        """
        if not self.path.is_file():
            return {}
        lines = self.path.read_text().splitlines()
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            return {}
        if (
            not isinstance(header, dict)
            or header.get("format") != CHECKPOINT_FORMAT
            or header.get("run") != self.run_key
        ):
            return {}
        partials: Dict[int, Mapping[str, Any]] = {}
        completed = set()
        for line in lines[1:]:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                break
            if not isinstance(entry, dict) or not isinstance(entry.get("index"), int):
                continue
            if isinstance(entry.get("point"), dict):
                completed.add(entry["index"])
            elif isinstance(entry.get("partial"), dict):
                partials[entry["index"]] = entry["partial"]
        return {
            index: partial
            for index, partial in partials.items()
            if index not in completed
        }

    def _append_entry(self, entry: Mapping[str, Any]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        write_header = not self.path.is_file() or self.path.stat().st_size == 0
        with open(self.path, "a") as handle:
            if write_header:
                handle.write(
                    json.dumps({"format": CHECKPOINT_FORMAT, "run": self.run_key}) + "\n"
                )
            handle.write(json.dumps(dict(entry)) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def append(self, index: int, point_mapping: Mapping[str, Any]) -> None:
        """Durably record one completed point."""
        self._append_entry({"index": index, "point": dict(point_mapping)})

    def append_partial(self, index: int, partial_mapping: Mapping[str, Any]) -> None:
        """Durably record one unconverged adaptive round (cumulative state)."""
        self._append_entry({"index": index, "partial": dict(partial_mapping)})

    def discard(self) -> None:
        """Delete the checkpoint (done after the final artefact is saved)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def __repr__(self) -> str:
        return f"RunCheckpoint({str(self.path)!r})"
