"""Framing and symbol synchronisation.

The PPM decoder must know where each symbol's range R starts.  The paper
relies on the system clock plus (future work) optical clock distribution; the
framing layer here provides the minimal machinery a real link needs: a
preamble of known symbols used to acquire the frame phase, a frame structure
with a length field and checksum, and a synchroniser that finds the preamble
in a stream of decoded symbols.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.modulation.symbols import bits_to_int, int_to_bits


@dataclass(frozen=True)
class Preamble:
    """A fixed, autocorrelation-friendly symbol pattern marking frame start."""

    symbols: Sequence[int] = (0, 3, 0, 3, 2, 1)

    def __post_init__(self) -> None:
        if len(self.symbols) == 0:
            raise ValueError("preamble must contain at least one symbol")
        if any(symbol < 0 for symbol in self.symbols):
            raise ValueError("preamble symbols must be non-negative")

    def __len__(self) -> int:
        return len(self.symbols)

    def matches(self, window: Sequence[int]) -> bool:
        """Exact match of a candidate window against the preamble."""
        return len(window) == len(self.symbols) and all(
            a == b for a, b in zip(window, self.symbols)
        )

    def correlation(self, window: Sequence[int]) -> float:
        """Fraction of matching positions (soft match, tolerates symbol errors)."""
        if len(window) != len(self.symbols):
            raise ValueError("window length must equal the preamble length")
        hits = sum(1 for a, b in zip(window, self.symbols) if a == b)
        return hits / len(self.symbols)


@dataclass
class Frame:
    """A payload frame: length-prefixed bit payload with a parity checksum."""

    payload_bits: List[int]

    LENGTH_FIELD_BITS = 16
    CHECKSUM_BITS = 8

    def __post_init__(self) -> None:
        if len(self.payload_bits) == 0:
            raise ValueError("payload must be non-empty")
        if len(self.payload_bits) >= (1 << self.LENGTH_FIELD_BITS):
            raise ValueError("payload too long for the length field")
        if any(bit not in (0, 1) for bit in self.payload_bits):
            raise ValueError("payload bits must be 0 or 1")

    def checksum(self) -> int:
        """8-bit modular sum of payload bytes (padding the tail with zeros)."""
        total = 0
        for start in range(0, len(self.payload_bits), 8):
            chunk = self.payload_bits[start : start + 8]
            chunk = list(chunk) + [0] * (8 - len(chunk))
            total = (total + bits_to_int(chunk)) & 0xFF
        return total

    def serialize(self) -> List[int]:
        """Header (length) + payload + checksum as a flat bit list."""
        bits = int_to_bits(len(self.payload_bits), self.LENGTH_FIELD_BITS)
        bits += list(self.payload_bits)
        bits += int_to_bits(self.checksum(), self.CHECKSUM_BITS)
        return bits

    @classmethod
    def deserialize(cls, bits: Sequence[int]) -> "Frame":
        """Parse a serialized frame; raises :class:`ValueError` on corruption."""
        if len(bits) < cls.LENGTH_FIELD_BITS + cls.CHECKSUM_BITS + 1:
            raise ValueError("bit stream too short to contain a frame")
        length = bits_to_int(list(bits[: cls.LENGTH_FIELD_BITS]))
        expected_total = cls.LENGTH_FIELD_BITS + length + cls.CHECKSUM_BITS
        if len(bits) < expected_total:
            raise ValueError(
                f"frame declares {length} payload bits but only "
                f"{len(bits) - cls.LENGTH_FIELD_BITS - cls.CHECKSUM_BITS} are present"
            )
        payload = list(bits[cls.LENGTH_FIELD_BITS : cls.LENGTH_FIELD_BITS + length])
        checksum = bits_to_int(
            list(bits[cls.LENGTH_FIELD_BITS + length : expected_total])
        )
        frame = cls(payload_bits=payload)
        if frame.checksum() != checksum:
            raise ValueError("frame checksum mismatch")
        return frame


class FrameSync:
    """Locates the preamble in a stream of decoded PPM symbols."""

    def __init__(self, preamble: Preamble = Preamble(), threshold: float = 1.0) -> None:
        if not 0 < threshold <= 1:
            raise ValueError("threshold must be within (0, 1]")
        self.preamble = preamble
        self.threshold = threshold

    def find(self, symbols: Sequence[int]) -> Optional[int]:
        """Index of the first symbol *after* the preamble, or ``None`` if not found."""
        plen = len(self.preamble)
        if len(symbols) < plen:
            return None
        for start in range(len(symbols) - plen + 1):
            window = symbols[start : start + plen]
            if self.preamble.correlation(window) >= self.threshold:
                return start + plen
        return None

    def frame_symbols(self, bits_per_symbol: int, frame: Frame) -> List[int]:
        """Preamble symbols followed by the frame's payload encoded as symbol values."""
        if bits_per_symbol <= 0:
            raise ValueError("bits_per_symbol must be positive")
        bits = frame.serialize()
        # Pad to a whole number of symbols.
        remainder = len(bits) % bits_per_symbol
        if remainder:
            bits = bits + [0] * (bits_per_symbol - remainder)
        symbols = list(self.preamble.symbols)
        for start in range(0, len(bits), bits_per_symbol):
            symbols.append(bits_to_int(bits[start : start + bits_per_symbol]))
        return symbols
