"""The discrete-event simulator.

The engine owns the clock and the event queue.  Events carry an optional
``target`` process; untargeted events can be observed through global hooks.
The engine never advances time backwards and delivers simultaneous events in
insertion order, so runs are fully deterministic for a fixed seed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.simulation.events import Event, EventQueue
from repro.simulation.process import Process, ProcessState


class Simulator:
    """Event-driven simulator with targeted event delivery.

    Parameters
    ----------
    end_time:
        Optional hard stop; events scheduled later than this are still queued
        but never delivered.
    """

    def __init__(self, end_time: Optional[float] = None) -> None:
        if end_time is not None and end_time < 0:
            raise ValueError(f"end_time must be non-negative, got {end_time}")
        self._queue = EventQueue()
        self._now = 0.0
        self._end_time = end_time
        self._processes: Dict[str, Process] = {}
        self._targets: Dict[int, Process] = {}
        self._hooks: List[Callable[[Event], None]] = []
        self._delivered = 0
        self._running = False

    # -- configuration ------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def delivered_events(self) -> int:
        """Number of events delivered so far."""
        return self._delivered

    def add_process(self, process: Process) -> Process:
        """Register a process; names must be unique within a simulator."""
        if process.name in self._processes:
            raise ValueError(f"duplicate process name {process.name!r}")
        process.bind(self)
        self._processes[process.name] = process
        return process

    def process(self, name: str) -> Process:
        """Look up a registered process by name."""
        return self._processes[name]

    def add_hook(self, hook: Callable[[Event], None]) -> None:
        """Register a callback invoked for every delivered event."""
        self._hooks.append(hook)

    # -- scheduling ----------------------------------------------------------
    def schedule(
        self,
        delay: float,
        kind: str = "event",
        payload: Any = None,
        target: Optional[Process] = None,
        priority: int = 0,
    ) -> Event:
        """Schedule an event ``delay`` seconds after the current time."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        event = self._queue.push(self._now + delay, kind=kind, payload=payload, priority=priority)
        if target is not None:
            if target.name not in self._processes:
                raise ValueError(f"target process {target.name!r} is not registered")
            self._targets[event.sequence] = target
        return event

    def schedule_at(
        self,
        time: float,
        kind: str = "event",
        payload: Any = None,
        target: Optional[Process] = None,
        priority: int = 0,
    ) -> Event:
        """Schedule an event at an absolute simulation time (must not be in the past)."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past: {time} < {self._now}")
        return self.schedule(time - self._now, kind=kind, payload=payload, target=target, priority=priority)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event."""
        self._queue.cancel(event)
        self._targets.pop(event.sequence, None)

    # -- execution -----------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once the next event would be later than this time (combined
            with the constructor's ``end_time``, whichever is earlier).
        max_events:
            Safety valve for open-ended simulations.

        Returns the number of events delivered during this call.
        """
        limit = self._effective_limit(until)
        if not self._running:
            for process in self._processes.values():
                process.state = ProcessState.RUNNING
                process.on_start()
            self._running = True

        delivered_before = self._delivered
        while True:
            if max_events is not None and self._delivered - delivered_before >= max_events:
                break
            next_event = self._queue.peek()
            if next_event is None:
                break
            if limit is not None and next_event.time > limit:
                self._now = limit
                break
            event = self._queue.pop()
            self._now = event.time
            self._dispatch(event)
        return self._delivered - delivered_before

    def finish(self) -> None:
        """Signal end-of-simulation to all processes."""
        for process in self._processes.values():
            if process.state is ProcessState.RUNNING:
                process.state = ProcessState.STOPPED
                process.on_stop()
        self._running = False

    # -- internals -----------------------------------------------------------
    def _effective_limit(self, until: Optional[float]) -> Optional[float]:
        limits = [value for value in (until, self._end_time) if value is not None]
        return min(limits) if limits else None

    def _dispatch(self, event: Event) -> None:
        self._delivered += 1
        target = self._targets.pop(event.sequence, None)
        if target is not None:
            target.on_event(event)
        for hook in self._hooks:
            hook(event)
