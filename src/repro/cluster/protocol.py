"""The cluster wire protocol: newline-delimited JSON over TCP sockets.

Everything the coordinator and workers exchange is **strict JSON, one
message per line** — the same zero-dependency discipline as
:mod:`repro.service`, but over raw sockets (no HTTP framing overhead on the
hot dispatch path).  Python's ``json`` emits floats via ``repr``, which
round-trips every IEEE-754 double exactly, so outcome accumulators survive
the wire bit for bit — the foundation of the cluster's bit-identity
contract.

Message vocabulary (``type`` field):

==============  =============  ==================================================
type            direction      meaning
==============  =============  ==================================================
``hello``       worker → coo.  worker identity (name, pid) on every connection
``attach``      coo. → worker  claim the connection for task dispatch
``ready``       worker → coo.  pull request: the worker wants a task
``task``        coo. → worker  one chunk task (``task_id``, ``attempt``, wire task)
``result``      worker → coo.  the task's outcome accumulators (``task_id``)
``task_error``  worker → coo.  the attempt raised (``error_type``, ``message``)
``heartbeat``   worker → coo.  liveness beacon, sent even while computing
``status``      probe → work.  status request (``repro workers``)
``status_reply`` worker →      status payload, connection then closes
``shutdown``    coo. → worker  drop the connection cleanly
==============  =============  ==================================================

:class:`MessageChannel` wraps a connected socket with the framing: writers
hold a lock (the worker's heartbeat thread and its task loop share one
socket), readers either block with a timeout (:meth:`MessageChannel.recv`,
the worker side) or drain whatever select() said is available
(:meth:`MessageChannel.pump`, the coordinator's dispatch loop).

Task and outcome payloads cross the wire as plain data only:
:func:`task_to_wire` ships exactly the picklable fields of a
:class:`~repro.scenarios.executors.PointTask` (never ``live_scenario``), and
:func:`outcome_to_wire` ships the outcome's *accumulators* — the link
configuration never travels, the coordinator rebuilds it from the scenario
and the point parameters exactly as the adaptive-checkpoint restore path
does.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.scenarios.executors import PointTask
from repro.scenarios.metrics import PointOutcome

#: Hard cap on one framed message (a 4096-channel outcome with per-channel
#: splits is ~50 KiB; anything near this bound is a protocol bug, not data).
MAX_MESSAGE_BYTES = 32 * 1024 * 1024

#: Read granularity of the channel buffer.
_RECV_BYTES = 1 << 16


class ChannelClosed(ConnectionError):
    """The peer hung up (EOF) or the socket failed mid-message."""


Address = Tuple[str, int]


def parse_address(value: Union[str, Address]) -> Address:
    """``"host:port"`` (or an ``(host, port)`` pair) → ``(host, port)``."""
    if isinstance(value, tuple):
        host, port = value
        return str(host), int(port)
    text = str(value).strip()
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"worker address must be host:port, got {value!r}")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"worker address port must be an int, got {value!r}") from None


def parse_addresses(
    value: Union[str, Sequence[Union[str, Address]]]
) -> Tuple[Address, ...]:
    """A ``"host:port,host:port"`` string or sequence → address tuples."""
    if isinstance(value, str):
        parts: Sequence[Union[str, Address]] = [
            part for part in value.split(",") if part.strip()
        ]
    else:
        parts = list(value)
    if not parts:
        raise ValueError(f"no worker addresses in {value!r}")
    return tuple(parse_address(part) for part in parts)


def format_address(address: Address) -> str:
    return f"{address[0]}:{address[1]}"


class MessageChannel:
    """One connected socket, framed as newline-delimited JSON messages.

    Sends are serialised under a lock so concurrent writers (the worker's
    heartbeat thread alongside its task loop) never interleave frames.
    Reads are single-consumer by design — each side has exactly one reader.
    """

    def __init__(self, sock: socket.socket) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._buffer = bytearray()
        self._decoded: List[Dict[str, Any]] = []
        self._send_lock = threading.Lock()
        self.closed = False

    def fileno(self) -> int:
        return self._sock.fileno()

    @property
    def peer(self) -> str:
        try:
            return format_address(self._sock.getpeername()[:2])
        except OSError:
            return "<disconnected>"

    # -- writing ---------------------------------------------------------------
    def send(self, message: Dict[str, Any]) -> None:
        data = json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"
        try:
            with self._send_lock:
                self._sock.sendall(data)
        except OSError as error:
            self.close()
            raise ChannelClosed(f"send to {self.peer} failed: {error}") from error

    # -- reading ---------------------------------------------------------------
    def _decode_buffer(self) -> None:
        """Move every complete frame from the byte buffer to the decoded queue."""
        while True:
            newline = self._buffer.find(b"\n")
            if newline < 0:
                if len(self._buffer) > MAX_MESSAGE_BYTES:
                    raise ChannelClosed("peer sent an overlong unframed message")
                return
            line = bytes(self._buffer[:newline])
            del self._buffer[: newline + 1]
            if line.strip():
                self._decoded.append(json.loads(line.decode("utf-8")))

    def recv(self, timeout: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """Blocking read of one message.

        Returns the message, or ``None`` when ``timeout`` elapsed with no
        complete frame (callers loop, checking their stop conditions).
        Raises :class:`ChannelClosed` on EOF or a dead socket.
        """
        while True:
            if self._decoded:
                return self._decoded.pop(0)
            try:
                self._sock.settimeout(timeout)
                chunk = self._sock.recv(_RECV_BYTES)
            except socket.timeout:
                return None
            except OSError as error:
                self.close()
                raise ChannelClosed(f"recv from {self.peer} failed: {error}") from error
            if not chunk:
                self.close()
                raise ChannelClosed(f"{self.peer} hung up")
            self._buffer.extend(chunk)
            self._decode_buffer()

    def pump(self) -> List[Dict[str, Any]]:
        """Non-blocking drain: every complete message currently available.

        Called by the coordinator after ``select()`` reported the socket
        readable.  Raises :class:`ChannelClosed` on EOF/socket death.
        """
        try:
            self._sock.settimeout(0.0)
            chunk = self._sock.recv(_RECV_BYTES)
        except (BlockingIOError, InterruptedError):
            chunk = None
        except OSError as error:
            self.close()
            raise ChannelClosed(f"recv from {self.peer} failed: {error}") from error
        if chunk == b"":
            self.close()
            raise ChannelClosed(f"{self.peer} hung up")
        if chunk:
            self._buffer.extend(chunk)
        self._decode_buffer()
        drained, self._decoded = self._decoded, []
        return drained

    def close(self) -> None:
        self.closed = True
        try:
            self._sock.close()
        except OSError:
            pass


def connect(address: Address, timeout: float = 5.0) -> MessageChannel:
    """Dial ``address`` and wrap the connection in a :class:`MessageChannel`."""
    sock = socket.create_connection(address, timeout=timeout)
    sock.settimeout(None)
    return MessageChannel(sock)


# -- task / outcome wire forms -------------------------------------------------
def task_to_wire(task: PointTask) -> Dict[str, Any]:
    """A :class:`PointTask` as plain JSON data (``live_scenario`` never ships)."""
    return {
        "scenario": dict(task.scenario),
        "parameters": dict(task.parameters),
        "seed": task.seed,
        "backend": task.backend,
        "chunk_symbols": task.chunk_symbols,
        "index": task.index,
        "start_symbol": task.start_symbol,
        "symbols": task.symbols,
    }


def task_from_wire(mapping: Dict[str, Any]) -> PointTask:
    """Rebuild the task worker-side (the ``live_scenario=None`` path of
    :func:`~repro.scenarios.executors.evaluate_task`)."""
    return PointTask(
        scenario=mapping["scenario"],
        parameters=mapping["parameters"],
        seed=int(mapping["seed"]),
        backend=str(mapping["backend"]),
        chunk_symbols=int(mapping["chunk_symbols"]),
        index=int(mapping["index"]),
        start_symbol=int(mapping.get("start_symbol", 0)),
        symbols=mapping.get("symbols"),
    )


def outcome_to_wire(outcome: PointOutcome) -> Dict[str, Any]:
    """Outcome accumulators as JSON data; the config never travels.

    NoC points additionally ship their bus counters — the one field
    :meth:`~repro.scenarios.metrics.PointOutcome.to_accumulator_mapping`
    omits (adaptive checkpoints never hold NoC points; the wire must).
    """
    mapping = outcome.to_accumulator_mapping()
    if outcome.noc is not None:
        mapping["noc"] = dict(outcome.noc)
    return mapping


def outcome_from_wire(config: Any, mapping: Dict[str, Any]) -> PointOutcome:
    """Inverse of :func:`outcome_to_wire`, given the locally rebuilt config."""
    return PointOutcome.from_accumulator_mapping(config, mapping)
