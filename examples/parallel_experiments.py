"""Parallel dispatch, streaming sessions and durable report artefacts.

Run with ``python examples/parallel_experiments.py``.

Shows the executor-based experiment API end to end:

1. run one scenario twice — serial executor vs. a 2-worker process pool —
   and verify the reports are *bit-identical* (dispatch changes wall clock,
   never content);
2. stream points from an ``ExperimentSession`` as they complete instead of
   waiting for the whole grid;
3. persist reports into a ``ReportStore`` and diff two runs point by point —
   longitudinal figure tracking in three lines.

Everything here is also one shell command away::

    python -m repro run design-space-grid --executor process --workers 4 \
        --store artifacts/
"""

import tempfile

from repro.scenarios import ExperimentRunner, ReportStore, get_scenario

BUDGET = 4_000


def main() -> None:
    scenario = get_scenario("design-space-grid").with_budget(BUDGET)

    print("=== executors: dispatch is invisible in the numbers ===")
    serial = ExperimentRunner(scenario, seed=11).run()
    parallel = ExperimentRunner(scenario, seed=11, executor="process", workers=2).run()
    assert parallel.to_mapping() == serial.to_mapping()
    print(f"serial and 2-worker process reports are bit-identical "
          f"({len(serial.points)} points, {serial.total_bits} bits)")

    print("\n=== streaming session: points as they complete ===")
    session = ExperimentRunner(scenario, seed=11).session()
    for point in session:
        shown = ", ".join(f"{k}={v}" for k, v in point.parameters.items())
        print(f"  [{session.completed_points}/{session.total_points}] "
              f"{shown}: ber={point.metric('ber'):.3e}")
    report = session.report()

    print("\n=== report store: durable, content-addressed artefacts ===")
    store = ReportStore(tempfile.mkdtemp(prefix="repro-artifacts-"))
    path = store.save(report)
    print(f"saved {path.name}")
    other = ExperimentRunner(scenario, seed=12).run()
    store.save(other)
    latest = store.latest("design-space-grid")
    print(f"store now holds {len(store.list())} artefact(s); latest: {latest}")

    comparison = store.compare(store.list()[0], store.list()[1], "ber")
    worst = max(comparison["points"], key=lambda row: abs(row["delta"]))
    print(f"largest seed-to-seed BER delta across the grid: {worst['delta']:+.3e} "
          f"at {worst['parameters']}")

    print("\n=> same front door from the shell: "
          "python -m repro run design-space-grid --executor process --workers 4")


if __name__ == "__main__":
    main()
