"""Tests for repro.spad.jitter."""

import numpy as np
import pytest

from repro.analysis.units import PS
from repro.simulation.randomness import RandomSource
from repro.spad.jitter import JitterModel


class TestStatics:
    def test_fwhm_relation(self):
        model = JitterModel(sigma=100 * PS, tail_fraction=0.0)
        assert model.fwhm == pytest.approx(235.5 * PS, rel=1e-3)

    def test_rms_grows_with_tail(self):
        no_tail = JitterModel(sigma=80 * PS, tail_fraction=0.0)
        with_tail = JitterModel(sigma=80 * PS, tail_fraction=0.2, tail_constant=200 * PS)
        assert with_tail.rms() > no_tail.rms()

    def test_validation(self):
        with pytest.raises(ValueError):
            JitterModel(sigma=-1.0)
        with pytest.raises(ValueError):
            JitterModel(tail_fraction=2.0)
        with pytest.raises(ValueError):
            JitterModel(tail_constant=0.0)


class TestSampling:
    def test_gaussian_only_statistics(self):
        model = JitterModel(sigma=100 * PS, tail_fraction=0.0)
        samples = model.sample_array(RandomSource(0), 20_000)
        assert np.mean(samples) == pytest.approx(0.0, abs=3 * PS)
        assert np.std(samples) == pytest.approx(100 * PS, rel=0.03)

    def test_tail_delays_only(self):
        model = JitterModel(sigma=0.0, tail_fraction=1.0, tail_constant=200 * PS)
        samples = model.sample_array(RandomSource(1), 5_000)
        assert np.all(samples >= 0)
        assert np.mean(samples) == pytest.approx(200 * PS, rel=0.1)

    def test_scalar_and_array_same_distribution(self):
        model = JitterModel()
        source = RandomSource(2)
        scalars = np.array([model.sample(source) for _ in range(5000)])
        arrays = model.sample_array(RandomSource(3), 5000)
        assert np.mean(scalars) == pytest.approx(np.mean(arrays), abs=10 * PS)

    def test_sample_array_validation(self):
        with pytest.raises(ValueError):
            JitterModel().sample_array(RandomSource(0), -1)


class TestProbabilityOutside:
    def test_monotone_in_window(self):
        model = JitterModel(sigma=80 * PS, tail_fraction=0.1, tail_constant=200 * PS)
        p_small = model.probability_outside(50 * PS)
        p_large = model.probability_outside(500 * PS)
        assert p_large < p_small <= 1.0

    def test_matches_monte_carlo(self):
        model = JitterModel(sigma=80 * PS, tail_fraction=0.1, tail_constant=200 * PS)
        half_window = 250 * PS
        samples = model.sample_array(RandomSource(4), 100_000)
        empirical = np.mean(np.abs(samples) > half_window)
        assert model.probability_outside(half_window) == pytest.approx(empirical, rel=0.25)

    def test_zero_sigma_zero_tail(self):
        model = JitterModel(sigma=0.0, tail_fraction=0.0)
        assert model.probability_outside(1 * PS) == pytest.approx(0.0)

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            JitterModel().probability_outside(-1.0)
