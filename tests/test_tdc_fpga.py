"""Tests for repro.tdc.fpga — the paper's proof-of-concept configuration."""

import pytest

from repro.analysis.units import MHZ, NS
from repro.simulation.randomness import RandomSource
from repro.tdc.fpga import (
    VIRTEX2PRO_PROFILE,
    FpgaCarryChainProfile,
    build_fpga_delay_line,
    build_fpga_tdc,
)


class TestProfile:
    def test_default_profile_matches_paper_setup(self):
        assert VIRTEX2PRO_PROFILE.system_clock == pytest.approx(200 * MHZ)
        assert VIRTEX2PRO_PROFILE.chain_length == 96
        assert VIRTEX2PRO_PROFILE.clock_period == pytest.approx(5 * NS)

    def test_validation(self):
        with pytest.raises(ValueError):
            FpgaCarryChainProfile(element_delay=0.0)
        with pytest.raises(ValueError):
            FpgaCarryChainProfile(chain_length=0)

    def test_element_model_carries_structure(self):
        model = VIRTEX2PRO_PROFILE.element_model()
        assert model.structural_period == VIRTEX2PRO_PROFILE.clb_period
        assert model.structural_extra == VIRTEX2PRO_PROFILE.clb_extra_delay


class TestPaperClaims:
    """Quantitative statements from Section 3 of the paper."""

    def test_96_element_chain_covers_the_5ns_window(self):
        line = build_fpga_delay_line(random_source=RandomSource(0), temperature=20.0)
        assert line.covers(5 * NS)

    def test_at_most_93_elements_used_at_20C(self):
        line = build_fpga_delay_line(random_source=RandomSource(0), temperature=20.0)
        used = line.elements_used_for(5 * NS)
        assert 90 <= used <= 96
        assert used <= 93 + 1  # the paper reports a maximum of 93

    def test_fewer_elements_needed_when_hot(self):
        cold = build_fpga_delay_line(random_source=RandomSource(0), temperature=0.0)
        hot = build_fpga_delay_line(random_source=RandomSource(0), temperature=80.0)
        assert hot.elements_used_for(5 * NS) < cold.elements_used_for(5 * NS)


class TestBuildTdc:
    def test_default_build(self):
        tdc = build_fpga_tdc(random_source=RandomSource(1))
        assert tdc.fine_elements == 96
        assert tdc.coarse_bits == 0
        assert tdc.usable_range == pytest.approx(5 * NS)

    def test_coarse_extension(self):
        tdc = build_fpga_tdc(coarse_bits=4, random_source=RandomSource(1))
        assert tdc.usable_range == pytest.approx(80 * NS)

    def test_metastability_option(self):
        tdc = build_fpga_tdc(with_metastability=True, random_source=RandomSource(1))
        assert tdc.metastability is not None
