"""Thermometer-code handling.

The latched delay-line state is a thermometer code (a run of ones followed by
zeros).  Metastability of the sampling flip-flops can corrupt individual bits
("bubbles"); the paper's fine controller (Figure 2-B) converts the thermometer
code to binary "so as to avoid metastability".  We model that with a bubble-
tolerant encoder: the output is the number of ones (ones-counter encoding),
which is the standard bubble-suppressing choice, optionally preceded by a
majority filter.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def binary_to_thermometer(value: int, length: int) -> np.ndarray:
    """Ideal thermometer code of ``value`` ones in a field of ``length`` bits."""
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    if not 0 <= value <= length:
        raise ValueError(f"value must be within [0, {length}], got {value}")
    code = np.zeros(length, dtype=np.int8)
    code[:value] = 1
    return code


def thermometer_to_binary(code: Sequence[int]) -> int:
    """Ones-counter conversion of a (possibly bubbly) thermometer code."""
    array = np.asarray(code)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("code must be a non-empty 1-D sequence")
    if np.any((array != 0) & (array != 1)):
        raise ValueError("thermometer code must contain only 0s and 1s")
    return int(array.sum())


def has_bubbles(code: Sequence[int]) -> bool:
    """True when the code is not a clean run of ones followed by zeros."""
    array = np.asarray(code)
    ones = int(array.sum())
    clean = binary_to_thermometer(ones, array.size)
    return bool(np.any(clean != array))


def majority_filter(code: Sequence[int], window: int = 3) -> np.ndarray:
    """Sliding-window majority vote used to suppress isolated bubbles.

    The window must be odd; boundary bits are padded by replicating the edge
    value so that a clean code is left untouched.
    """
    if window < 1 or window % 2 == 0:
        raise ValueError(f"window must be a positive odd integer, got {window}")
    array = np.asarray(code, dtype=np.int8)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("code must be a non-empty 1-D sequence")
    if window == 1:
        return array.copy()
    half = window // 2
    padded = np.concatenate([np.full(half, array[0]), array, np.full(half, array[-1])])
    filtered = np.empty_like(array)
    for i in range(array.size):
        segment = padded[i : i + window]
        filtered[i] = 1 if int(segment.sum()) * 2 > window else 0
    return filtered


class ThermometerEncoder:
    """Thermometer-to-binary encoder with optional bubble correction.

    Parameters
    ----------
    length:
        Expected code length (number of delay-line taps).
    bubble_correction:
        When true a 3-bit majority filter is applied before counting, matching
        the paper's "conversion ... so as to avoid metastability".
    """

    def __init__(self, length: int, bubble_correction: bool = True) -> None:
        if length <= 0:
            raise ValueError(f"length must be positive, got {length}")
        self.length = length
        self.bubble_correction = bubble_correction

    def encode(self, code: Sequence[int]) -> int:
        """Convert a latched thermometer code into a fine binary code."""
        array = np.asarray(code, dtype=np.int8)
        if array.size != self.length:
            raise ValueError(
                f"code length {array.size} does not match encoder length {self.length}"
            )
        if self.bubble_correction and has_bubbles(array):
            array = majority_filter(array, window=3)
        return thermometer_to_binary(array)

    def encode_batch(self, codes: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`encode` over a ``(samples, taps)`` code matrix.

        Produces exactly the per-row results of calling :meth:`encode` on each
        row: rows that are clean thermometer codes are ones-counted directly;
        bubbly rows are first passed through the same 3-bit majority filter
        (edge bits padded by replication) when bubble correction is enabled.
        """
        array = np.asarray(codes, dtype=np.int8)
        if array.ndim != 2 or array.shape[1] != self.length:
            raise ValueError(
                f"codes must be (samples, {self.length}), got {array.shape}"
            )
        if array.size and np.any((array != 0) & (array != 1)):
            raise ValueError("thermometer codes must contain only 0s and 1s")
        ones = array.sum(axis=1)
        if self.bubble_correction and array.shape[0]:
            clean = np.arange(self.length)[None, :] < ones[:, None]
            bubbly = np.any(array != clean, axis=1)
            if np.any(bubbly):
                sub = array[bubbly]
                padded = np.concatenate([sub[:, :1], sub, sub[:, -1:]], axis=1)
                window_sum = padded[:, :-2] + padded[:, 1:-1] + padded[:, 2:]
                ones[bubbly] = (window_sum >= 2).sum(axis=1)
        return ones.astype(np.int64)

    def output_bits(self) -> int:
        """Number of binary bits needed to represent the fine code."""
        return int(np.ceil(np.log2(self.length + 1)))
