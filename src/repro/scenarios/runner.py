"""Compiling scenarios onto the batch Monte-Carlo machinery.

:class:`ExperimentRunner` takes a declarative
:class:`~repro.scenarios.scenario.Scenario` and executes it: every grid point
becomes a self-contained :class:`~repro.scenarios.executors.PointTask` whose
seed is derived up front, dispatched through a pluggable
:class:`~repro.scenarios.executors.Executor` (serial in-process by default, a
process pool with ``executor="process"``), with each point a chunked
:meth:`~repro.simulation.montecarlo.MonteCarloRunner.run_batch` run in which
each Monte-Carlo trial is one PPM symbol pushed through a link built by the
backend registry (:func:`repro.core.backend.make_link`).

The result is a structured :class:`ExperimentReport`: one
:class:`ExperimentPoint` per grid point with metric values and 95 % confidence
half-widths, plus enough metadata (scenario mapping, backend, seed) to
reproduce the run bit for bit.  Because point seeds are derived before any
point runs, reports are **bit-identical across executors** — a process-pool
run equals a serial run, ``to_mapping()`` for ``to_mapping()``.

Streaming consumers use :meth:`ExperimentRunner.session` — an
:class:`~repro.scenarios.session.ExperimentSession` yields points as they
complete; :meth:`ExperimentRunner.run` is the run-to-completion adapter over
it.  Reports persist through :class:`~repro.scenarios.store.ReportStore`, and
``python -m repro run <scenario>`` drives all of this from the command line.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.report import ReportTable
from repro.core.backend import backend_capabilities, resolve_backend
from repro.scenarios.executors import (
    Executor,
    PointTask,
    WorkersArg,
    make_point_tasks,
    resolve_executor,
)
from repro.scenarios.faults import PointFailure, RetryPolicy
from repro.scenarios.metrics import PointOutcome, evaluate_metrics, metric_allows_nan
from repro.scenarios.scenario import Scenario
from repro.scenarios.session import ExperimentSession

if False:  # pragma: no cover - typing only, avoids a runtime cycle
    from repro.scenarios.store import RunCheckpoint

#: Default symbols per Monte-Carlo chunk.  Reports are deterministic in
#: ``(scenario, seed, chunk_symbols)``, so every front door (runner,
#: convenience function, CLI) must share this one value or their results
#: silently diverge.
DEFAULT_CHUNK_SYMBOLS = 8_192


def resolve_scenario_backend(scenario: Scenario, backend: Optional[str] = None) -> str:
    """The registered backend a run of ``scenario`` would use.

    ``backend`` overrides the scenario's own choice; aliases are normalised
    through the registry and the scenario's channel count is validated
    against the backend's capabilities.  This is the single place run
    front-doors (the runner, the CLI, the experiment service) resolve
    backends, so cache keys computed *before* running always match the
    backend the report will record.
    """
    resolved = resolve_backend(backend if backend is not None else scenario.backend)
    if scenario.channels > 1 and not backend_capabilities(resolved).supports_multichannel:
        raise ValueError(
            f"scenario {scenario.name!r} runs {scenario.channels} channels, "
            f"which backend {resolved!r} does not support"
        )
    return resolved


@dataclass(frozen=True)
class ExperimentPoint:
    """One evaluated grid point of a scenario experiment.

    ``budget`` is present only on adaptive-budget runs (scenarios with a
    ``ci_target``): a mapping recording the target, the metric it applied
    to, the achieved 95 % half-width, the number of simulation rounds, and
    whether the point converged before any ``max_symbols`` cap.  Fixed-budget
    points leave it ``None`` and serialise exactly as before.
    """

    parameters: Mapping[str, Any]
    metrics: Mapping[str, float]
    confidence: Mapping[str, Optional[float]]
    bits: int
    symbols: int
    detection_counts: Mapping[str, int] = field(default_factory=dict)
    budget: Optional[Mapping[str, Any]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "parameters", dict(self.parameters))
        object.__setattr__(self, "metrics", dict(self.metrics))
        object.__setattr__(self, "confidence", dict(self.confidence))
        object.__setattr__(self, "detection_counts", dict(self.detection_counts))
        if self.budget is not None:
            object.__setattr__(self, "budget", dict(self.budget))

    def metric(self, name: str) -> float:
        try:
            return self.metrics[name]
        except KeyError:
            known = ", ".join(sorted(self.metrics))
            raise KeyError(f"point has no metric {name!r}; available: {known}") from None

    def to_mapping(self) -> Dict[str, Any]:
        # NaN metric values (valid empty-point measurements of allow_nan
        # metrics) serialise as null: artefacts must stay *strict* JSON —
        # json.dumps would otherwise emit a bare `NaN` token that jq,
        # JSON.parse and most non-Python consumers reject.  from_mapping
        # restores them.
        mapping = {
            "parameters": dict(self.parameters),
            "metrics": {
                name: None if math.isnan(value) else value
                for name, value in self.metrics.items()
            },
            "confidence": dict(self.confidence),
            "bits": self.bits,
            "symbols": self.symbols,
            "detection_counts": dict(self.detection_counts),
        }
        if self.budget is not None:
            # Emitted only on adaptive runs: fixed-budget artefacts (and
            # their content digests) keep their historical shape.
            mapping["budget"] = dict(self.budget)
        return mapping

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "ExperimentPoint":
        """Inverse of :meth:`to_mapping` (artefact loading)."""
        data = dict(mapping)
        required = {"parameters", "metrics", "confidence", "bits", "symbols"}
        known = required | {"detection_counts", "budget"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown experiment-point key(s): {', '.join(unknown)}")
        missing = sorted(required - set(data))
        if missing:
            raise ValueError(f"experiment-point mapping lacks key(s): {', '.join(missing)}")
        data["metrics"] = {
            name: float("nan") if value is None else value
            for name, value in dict(data["metrics"]).items()
        }
        return cls(**data)


@dataclass(frozen=True)
class ExperimentReport:
    """Structured outcome of running one scenario end to end.

    ``failures`` is normally empty: under ``failure_policy="continue"`` it
    carries one :class:`~repro.scenarios.faults.PointFailure` per grid point
    that exhausted its retry budget (those points are absent from
    ``points``).  A report with no failures serialises exactly as before —
    the key is omitted — so fault tolerance never perturbs the content
    digest of a clean run.
    """

    scenario: Mapping[str, Any]
    backend: str
    seed: int
    points: Tuple[ExperimentPoint, ...]
    total_bits: int
    failures: Tuple[PointFailure, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenario", dict(self.scenario))
        object.__setattr__(self, "points", tuple(self.points))
        object.__setattr__(self, "failures", tuple(self.failures))

    @property
    def name(self) -> str:
        return str(self.scenario.get("name", "experiment"))

    def metric_series(self, metric: str, axis: Optional[str] = None):
        """``(axis_values, metric_values)`` arrays along one sweep axis.

        ``axis`` defaults to the scenario's single sweep axis; it must be
        named explicitly for multi-axis grids.
        """
        axes = list(self.scenario.get("sweep_axes", {}))
        if axis is None:
            if len(axes) != 1:
                raise ValueError(
                    f"scenario has {len(axes)} sweep axes; pass axis= explicitly"
                )
            axis = axes[0]
        xs = np.asarray([point.parameters[axis] for point in self.points])
        ys = np.asarray([point.metric(metric) for point in self.points])
        return xs, ys

    def to_mapping(self) -> Dict[str, Any]:
        """Plain-data form of the report (JSON-serialisable).

        The ``failures`` key appears only when there are failures: clean
        reports keep their historical shape (and content digest).
        """
        mapping = {
            "scenario": dict(self.scenario),
            "backend": self.backend,
            "seed": self.seed,
            "total_bits": self.total_bits,
            "points": [point.to_mapping() for point in self.points],
        }
        if self.failures:
            mapping["failures"] = [failure.to_mapping() for failure in self.failures]
        return mapping

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "ExperimentReport":
        """Inverse of :meth:`to_mapping` — reports round-trip through JSON.

        >>> from repro.scenarios import ExperimentRunner, get_scenario
        >>> scenario = get_scenario("ber-vs-photons").with_budget(128)
        >>> report = ExperimentRunner(scenario, seed=1).run()
        >>> ExperimentReport.from_mapping(report.to_mapping()) == report
        True
        """
        data = dict(mapping)
        required = {"scenario", "backend", "seed", "total_bits", "points"}
        known = required | {"failures"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown experiment-report key(s): {', '.join(unknown)}")
        missing = sorted(required - set(data))
        if missing:
            raise ValueError(f"experiment-report mapping lacks key(s): {', '.join(missing)}")
        points = tuple(
            point if isinstance(point, ExperimentPoint) else ExperimentPoint.from_mapping(point)
            for point in data.pop("points", ())
        )
        failures = tuple(
            failure if isinstance(failure, PointFailure) else PointFailure.from_mapping(failure)
            for failure in data.pop("failures", ())
        )
        return cls(points=points, failures=failures, **data)

    def summary(self) -> str:
        """Aligned text table of every point (one row) and metric (one column)."""
        metric_names = list(self.scenario.get("metrics", []))
        axis_names = list(self.scenario.get("sweep_axes", {}))
        table = ReportTable(columns=axis_names + metric_names)
        for point in self.points:
            cells: List[str] = [str(point.parameters[name]) for name in axis_names]
            for name in metric_names:
                half = point.confidence.get(name)
                value = point.metric(name)
                cells.append(
                    f"{value:.3e}" if half is None else f"{value:.3e} ± {half:.1e}"
                )
            table.add_row(*cells)
        header = (
            f"scenario {self.name!r} — backend={self.backend}, seed={self.seed}, "
            f"{len(self.points)} point(s), {self.total_bits} bits"
        )
        if self.failures:
            lines = [
                f"  FAILED {dict(failure.parameters)!r}: {failure.error_type} "
                f"after {failure.attempts} attempt(s): {failure.message}"
                for failure in self.failures
            ]
            header += f", {len(self.failures)} failed point(s)\n" + "\n".join(lines)
        return f"{header}\n{table.render()}"


class ExperimentRunner:
    """Executes a :class:`Scenario` on the chunked batch Monte-Carlo machinery.

    Parameters
    ----------
    scenario:
        The declarative experiment to run.
    seed:
        Root seed of the run.  Per-point seeds are derived from it according
        to the scenario's ``seed_policy``; reports are deterministic in
        ``(scenario, seed, chunk_symbols)`` — and identical across executors.
    backend:
        Optional override of the scenario's link backend (by registered name).
    chunk_symbols:
        Symbols simulated per batch-transmission chunk; bounds peak memory and
        fixes the seeding layout.
    executor:
        How grid points are dispatched: ``None``/``"serial"`` evaluates them
        in-process, ``"process"`` fans them out over a
        :class:`~repro.scenarios.executors.ProcessExecutor` pool, and any
        :class:`~repro.scenarios.executors.Executor` instance is used as is.
    workers:
        Pool size for a named ``"process"`` executor, or cluster worker
        addresses (``"host:port,…"`` / a sequence) for ``"cluster"`` —
        either implies its executor when set without ``executor=``.
    retry:
        Optional :class:`~repro.scenarios.faults.RetryPolicy` applied to the
        resolved executor: failed/hung point attempts are retried with
        deterministic backoff, bit-identically to an unfailed run.
    failure_policy:
        ``"fail_fast"`` (default) or ``"continue"`` — whether an exhausted
        point aborts the run or lands in ``report.failures``.
    """

    def __init__(
        self,
        scenario: Scenario,
        seed: int = 0,
        backend: Optional[str] = None,
        chunk_symbols: int = DEFAULT_CHUNK_SYMBOLS,
        executor: Union[None, str, Executor] = None,
        workers: WorkersArg = None,
        retry: Optional[RetryPolicy] = None,
        failure_policy: Optional[str] = None,
    ) -> None:
        if chunk_symbols <= 0:
            raise ValueError("chunk_symbols must be positive")
        self.scenario = scenario
        self.seed = seed
        self.backend = resolve_scenario_backend(scenario, backend)
        self.chunk_symbols = chunk_symbols
        self.executor = resolve_executor(executor, workers, retry, failure_policy)

    # -- point execution -------------------------------------------------------
    def point_tasks(self) -> List[PointTask]:
        """The run's grid-ordered, picklable work units (seeds pre-derived).

        Point execution has exactly one entry point —
        :func:`~repro.scenarios.executors.evaluate_point`, reached through
        these tasks whatever the executor — so serial and parallel runs
        cannot drift apart.
        """
        return make_point_tasks(
            self.scenario,
            seed=self.seed,
            backend=self.backend,
            chunk_symbols=self.chunk_symbols,
        )

    # -- report assembly -------------------------------------------------------
    def build_point(
        self,
        parameters: Mapping[str, Any],
        outcome: PointOutcome,
        budget: Optional[Mapping[str, Any]] = None,
    ) -> ExperimentPoint:
        """Evaluate the scenario's metrics on one point outcome.

        Metric functions (including user-registered ones) always run here, in
        the parent process — only plain-data outcomes cross executor
        boundaries.  Infinite values always raise; ``NaN`` raises unless the
        metric was registered with ``allow_nan=True`` (the NoC traffic
        metrics, whose ratios are legitimately undefined on an empty point).
        ``budget`` (adaptive runs only) is recorded on the point verbatim.
        """
        values, confidence = evaluate_metrics(self.scenario.metrics, outcome)
        for name, value in values.items():
            if math.isinf(value) or (math.isnan(value) and not metric_allows_nan(name)):
                raise ValueError(
                    f"metric {name!r} evaluated to {value} at point {dict(parameters)!r} "
                    f"of scenario {self.scenario.name!r}"
                )
        return ExperimentPoint(
            parameters=dict(parameters),
            metrics=values,
            confidence=confidence,
            bits=outcome.bits,
            symbols=outcome.symbols,
            detection_counts=outcome.detection_counts,
            budget=budget,
        )

    def assemble_report(
        self,
        points: Sequence[ExperimentPoint],
        failures: Sequence[PointFailure] = (),
    ) -> ExperimentReport:
        """Assemble grid-ordered points (and any failures) into the report."""
        return ExperimentReport(
            scenario=self.scenario.to_mapping(),
            backend=self.backend,
            seed=self.seed,
            points=tuple(points),
            total_bits=sum(point.bits for point in points),
            failures=tuple(failures),
        )

    # -- experiment execution ------------------------------------------------------
    def session(
        self,
        executor: Union[None, str, Executor] = None,
        workers: WorkersArg = None,
        checkpoint: Optional["RunCheckpoint"] = None,
    ) -> ExperimentSession:
        """Start a streaming :class:`ExperimentSession` for this run.

        ``executor``/``workers`` override the runner's dispatch for this
        session only; iterate the session for points as they complete and
        call :meth:`ExperimentSession.report` for the assembled report.
        ``checkpoint`` (see
        :meth:`~repro.scenarios.store.ReportStore.run_checkpoint`) enables
        incremental crash recovery: previously recorded points are restored
        instead of re-evaluated, and new points are appended as they land.
        """
        if executor is None and workers is None:
            chosen = self.executor
        else:
            chosen = resolve_executor(executor, workers)
        return ExperimentSession(self, chosen, checkpoint=checkpoint)

    def run(
        self,
        progress: Optional[Callable[[int, int], None]] = None,
        executor: Union[None, str, Executor] = None,
        workers: WorkersArg = None,
    ) -> ExperimentReport:
        """Evaluate every grid point and assemble the structured report.

        A thin adapter over :meth:`session`: ``progress`` (optional) is called
        with ``(points_done, points_total)`` as each point completes.
        """
        session = self.session(executor, workers)
        try:
            done = 0
            for _point in session:
                done += 1
                if progress is not None:
                    progress(done, session.total_points)
            return session.report()
        finally:
            # On an error (e.g. a non-finite metric) a process pool would
            # otherwise keep simulating the remaining grid points until GC.
            session.close()


def run_scenario(
    scenario: Scenario,
    seed: int = 0,
    backend: Optional[str] = None,
    chunk_symbols: int = DEFAULT_CHUNK_SYMBOLS,
    executor: Union[None, str, Executor] = None,
    workers: WorkersArg = None,
    store: Union[None, str, "ReportStore"] = None,  # noqa: F821 - forward ref
    retry: Optional[RetryPolicy] = None,
    failure_policy: Optional[str] = None,
    resume: bool = False,
) -> ExperimentReport:
    """One-call convenience: build an :class:`ExperimentRunner` and run it.

    Exposes the runner's full determinism contract — reports are a function
    of ``(scenario, seed, chunk_symbols)``, whatever ``executor``/``workers``
    dispatch them — and optionally persists the report into a
    :class:`~repro.scenarios.store.ReportStore` (a store instance or a
    directory path).

    With a store, completed points are checkpointed incrementally; pass
    ``resume=True`` to pick up a killed run's checkpoint, re-evaluating only
    the points it had not finished (the final report — and its content
    digest — equals an uninterrupted run's).  Without ``resume`` any stale
    checkpoint for the same run is discarded first.  The checkpoint is
    removed once the report is safely saved.
    """
    runner = ExperimentRunner(
        scenario,
        seed=seed,
        backend=backend,
        chunk_symbols=chunk_symbols,
        executor=executor,
        workers=workers,
        retry=retry,
        failure_policy=failure_policy,
    )
    if resume and store is None:
        raise ValueError("resume=True needs a store to read the checkpoint from")
    checkpoint = None
    report_store = None
    if store is not None:
        from repro.scenarios.store import ReportStore

        report_store = store if isinstance(store, ReportStore) else ReportStore(store)
        checkpoint = report_store.run_checkpoint(
            scenario.to_mapping(), runner.backend, seed, chunk_symbols
        )
        if not resume:
            checkpoint.discard()
    session = runner.session(checkpoint=checkpoint)
    try:
        report = session.report()
    finally:
        session.close()
    if report_store is not None:
        # The checkpoint key *is* the run key: recording it indexes the
        # finished artefact for O(1) cache probes (store.find_run / the
        # experiment service's dedupe path).
        report_store.save(report, run_key=checkpoint.run_key)
        if checkpoint is not None:
            checkpoint.discard()
    return report
