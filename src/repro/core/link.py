"""End-to-end optical PPM link simulator.

:class:`OpticalLink` wires the substrates together exactly as in Figure 1 of
the paper: a PPM encoder drives the micro-LED schedule, the optical channel
attenuates and delays the pulse, the SPAD stochastically reports the first
detection in each measurement window (signal photon, dark count or
afterpulse), the two-level TDC digitises the time of arrival, and the PPM
decoder maps it back to bits.

The simulator works symbol by symbol (one measurement window per symbol), so
dead time and afterpulsing carry over between consecutive symbols exactly as
in the hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import LinkConfig
from repro.modulation.ppm import PpmCodec
from repro.modulation.symbols import count_bit_errors, int_to_bits
from repro.photonics.channel import OpticalChannel
from repro.simulation.randomness import RandomSource
from repro.spad.device import DetectionOrigin, SpadDevice
from repro.tdc.coarse_counter import CoarseCounter
from repro.tdc.converter import TimeToDigitalConverter
from repro.tdc.delay_element import DelayElementModel
from repro.tdc.delay_line import TappedDelayLine


@dataclass
class TransmissionResult:
    """Outcome of transmitting a payload over the link.

    This is the shared result contract of every registered link backend
    (see :mod:`repro.core.backend`): whichever engine simulated the payload,
    consumers receive the same fields and derived figures of merit.
    """

    transmitted_bits: List[int]
    received_bits: List[int]
    symbols_sent: int
    symbol_errors: int
    detection_counts: Dict[str, int]
    elapsed_time: float
    #: Per-symbol likelihood weights (importance-sampled backends only;
    #: ``None`` for naive transmission).  ``symbol_weights[i]`` reweights
    #: symbol ``i``'s error indicator back to the natural measure.
    symbol_weights: Optional[np.ndarray] = None
    #: Per-symbol winning detection-origin codes (importance-sampled backends
    #: only; ``None`` for naive transmission) — indexes into
    #: :data:`~repro.spad.device.CODE_BY_ORIGIN`'s value space, ``-1`` for a
    #: missed window.  Lets consumers stratify weighted error mass by origin.
    symbol_origins: Optional[np.ndarray] = None

    @property
    def bit_errors(self) -> int:
        """Number of payload bit positions that differ."""
        if not self.transmitted_bits:
            return 0
        return count_bit_errors(self.transmitted_bits, self.received_bits)

    @property
    def bit_error_rate(self) -> float:
        if not self.transmitted_bits:
            raise ValueError("no bits were transmitted")
        return self.bit_errors / len(self.transmitted_bits)

    @property
    def symbol_error_rate(self) -> float:
        if self.symbols_sent == 0:
            raise ValueError("no symbols were transmitted")
        return self.symbol_errors / self.symbols_sent

    @property
    def throughput(self) -> float:
        """Payload bits per second of simulated link time."""
        if self.elapsed_time <= 0:
            raise ValueError("elapsed_time must be positive")
        return len(self.transmitted_bits) / self.elapsed_time

    def summary(self) -> str:
        return (
            f"{len(self.transmitted_bits)} bits in {self.symbols_sent} symbols, "
            f"{self.bit_errors} bit errors (BER={self.bit_error_rate:.2e}), "
            f"{self.symbol_errors} symbol errors, throughput {self.throughput / 1e6:.1f} Mbit/s"
        )


class OpticalLink:
    """One transmitter-to-receiver PPM channel.

    Parameters
    ----------
    config:
        The link configuration (PPM order, slot timing, SPAD operating point,
        received pulse energy).
    channel:
        Optional :class:`~repro.photonics.channel.OpticalChannel`.  When
        supplied, ``config.mean_detected_photons`` is interpreted as the
        *emitted* mean photon count and the channel transmission is applied on
        top of it; without a channel it is the count at the detector.
    seed:
        Seed for all stochastic behaviour (SPAD, TDC mismatch).
    """

    def __init__(
        self,
        config: LinkConfig = LinkConfig(),
        channel: Optional[OpticalChannel] = None,
        seed: int = 0,
    ) -> None:
        self.config = config
        self.channel = channel
        self._root_source = RandomSource(seed)
        self.codec = PpmCodec(config.slot_grid())
        self.spad = SpadDevice(
            config=config.spad_config(),
            quenching=config.quenching_circuit(),
            random_source=self._root_source.spawn("spad"),
        )
        self.tdc = self._build_tdc()

    # -- construction helpers ---------------------------------------------------
    def _build_tdc(self) -> TimeToDigitalConverter:
        design = self.config.effective_tdc_design()
        element_model = DelayElementModel(
            nominal_delay=design.element_delay,
            mismatch_sigma=0.05,
        )
        # A small deterministic margin keeps the (randomly mismatched) chain
        # covering one coarse clock period, as the hardware design rule requires.
        length = design.fine_elements + max(2, design.fine_elements // 10)
        line = TappedDelayLine(
            element_model,
            length=length,
            random_source=self._root_source.spawn("tdc"),
            temperature=self.config.temperature,
        )
        coarse = CoarseCounter(
            clock_frequency=1.0 / (design.fine_elements * design.element_delay),
            bits=design.coarse_bits,
        )
        return TimeToDigitalConverter(line, coarse)

    # -- photon budget -------------------------------------------------------------
    def mean_photons_at_detector(self) -> float:
        """Mean photons per pulse reaching the SPAD active area."""
        photons = self.config.mean_detected_photons
        if self.channel is not None:
            photons *= self.channel.transmission(self.config.temperature)
        return photons

    def detection_probability_per_pulse(self) -> float:
        """Probability that a transmitted pulse triggers the SPAD at all."""
        return self.spad.detection_probability_for_photons(self.mean_photons_at_detector())

    # -- transmission -----------------------------------------------------------------
    def transmit_bits(self, bits: Sequence[int]) -> TransmissionResult:
        """Send a payload over the link and return the decoded result.

        The payload is padded with zeros to a whole number of symbols; error
        statistics are computed over the original (unpadded) bit positions.
        """
        payload = list(bits)
        if not payload:
            raise ValueError("bits must be non-empty")
        if any(bit not in (0, 1) for bit in payload):
            raise ValueError("bits must be 0 or 1")
        k = self.config.ppm_bits
        padded = list(payload)
        remainder = len(padded) % k
        if remainder:
            padded += [0] * (k - remainder)

        symbols = self.codec.encode_bits(padded)
        symbol_duration = self.config.symbol_duration
        mean_photons = self.mean_photons_at_detector()

        received_bits: List[int] = []
        symbol_errors = 0
        detection_counts = {
            "photon": 0,
            "dark_count": 0,
            "afterpulse": 0,
            # A single isolated channel never reports crosstalk; the key is
            # present so every backend shares one detection-count shape.
            "crosstalk": 0,
            "missed": 0,
        }
        self.spad.reset()

        for index, symbol in enumerate(symbols):
            window_start = index * symbol_duration
            # Gated operation: the receiver re-arms the SPAD at the start of
            # every measurement window (this is what lets the detection cycle
            # be matched to the PPM range, as the paper's DC(N, C) assumes).
            self.spad.rearm(window_start)
            # The channel's propagation delay shifts every symbol identically,
            # so the receiver's window is assumed aligned to it (clock
            # recovery) and the pulse lands at its window-relative slot time.
            photon_time = window_start + symbol.pulse_time
            detection = self.spad.detect_in_window(
                window_start, symbol_duration, photon_time, mean_photons
            )
            if detection is None:
                detection_counts["missed"] += 1
                decoded_value = 0
            else:
                detection_counts[detection.origin.value] += 1
                relative = detection.time - window_start
                conversion = self.tdc.convert(min(relative, self.tdc.usable_range * 0.999999))
                measured = min(max(conversion.measured_time, 0.0), symbol_duration * 0.999999)
                decoded_value = self.codec.decode_time(measured)
            received_bits.extend(int_to_bits(decoded_value, k))
            if decoded_value != symbol.value:
                symbol_errors += 1

        elapsed = len(symbols) * symbol_duration
        return TransmissionResult(
            transmitted_bits=payload,
            received_bits=received_bits[: len(payload)],
            symbols_sent=len(symbols),
            symbol_errors=symbol_errors,
            detection_counts=detection_counts,
            elapsed_time=elapsed,
        )

    def transmit_random(self, bit_count: int, payload_seed: int = 1234) -> TransmissionResult:
        """Transmit ``bit_count`` random bits (convenience for benchmarks)."""
        if bit_count <= 0:
            raise ValueError("bit_count must be positive")
        source = RandomSource(payload_seed)
        payload = source.generator.integers(0, 2, size=bit_count).tolist()
        return self.transmit_bits(payload)

    # -- figures of merit ----------------------------------------------------------------
    def raw_bit_rate(self) -> float:
        """Link throughput with back-to-back symbols [bit/s]."""
        return self.config.raw_bit_rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OpticalLink(K={self.config.ppm_bits}, slot={self.config.slot_duration:.2e}s, "
            f"rate={self.raw_bit_rate() / 1e6:.1f} Mbit/s)"
        )
