"""Self-synchronising multiplicative scrambler.

PPM with the natural binary mapping concentrates optical pulses at specific
slots when the payload is highly structured (e.g. long runs of zeros put every
pulse in slot 0), which both worsens crosstalk correlation and starves the
framing logic of transitions.  A standard multiplicative scrambler whitens the
payload before PPM encoding and is exactly undone at the receiver.
"""

from __future__ import annotations

from typing import List, Sequence


class MultiplicativeScrambler:
    """x^7 + x^4 + 1 style multiplicative scrambler/descrambler.

    The polynomial is configurable through ``taps`` (tap positions are
    1-indexed shift-register stages, as in ITU specifications).
    """

    def __init__(self, taps: Sequence[int] = (7, 4), register_length: int = 7) -> None:
        if register_length <= 0:
            raise ValueError("register_length must be positive")
        if len(taps) == 0:
            raise ValueError("at least one tap is required")
        if any(not 1 <= tap <= register_length for tap in taps):
            raise ValueError("taps must lie within [1, register_length]")
        self.taps = tuple(sorted(set(taps)))
        self.register_length = register_length

    def _feedback(self, register: List[int]) -> int:
        value = 0
        for tap in self.taps:
            value ^= register[tap - 1]
        return value

    def scramble(self, bits: Sequence[int], initial_state: int = 0) -> List[int]:
        """Scramble a bit sequence (multiplicative: output feeds the register)."""
        register = self._initial_register(initial_state)
        output = []
        for bit in bits:
            self._check_bit(bit)
            scrambled = bit ^ self._feedback(register)
            output.append(scrambled)
            register.insert(0, scrambled)
            register.pop()
        return output

    def descramble(self, bits: Sequence[int], initial_state: int = 0) -> List[int]:
        """Invert :meth:`scramble`; self-synchronising after ``register_length`` bits."""
        register = self._initial_register(initial_state)
        output = []
        for bit in bits:
            self._check_bit(bit)
            descrambled = bit ^ self._feedback(register)
            output.append(descrambled)
            register.insert(0, bit)
            register.pop()
        return output

    def _initial_register(self, initial_state: int) -> List[int]:
        if initial_state < 0 or initial_state >= (1 << self.register_length):
            raise ValueError(
                f"initial_state must fit in {self.register_length} bits"
            )
        return [(initial_state >> i) & 1 for i in range(self.register_length)]

    @staticmethod
    def _check_bit(bit: int) -> None:
        if bit not in (0, 1):
            raise ValueError(f"bits must be 0 or 1, got {bit}")
