"""Conventional I/O pad model.

The unit against which the paper's optical transceiver is compared: a
wire-bonded digital I/O pad with its ESD structures, pad metal, and output
driver.  The figures of merit are silicon area, energy per bit, achievable bit
rate (limited by the bond wire) and bandwidth density (bit rate per unit of
die-edge length).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.units import UM
from repro.electrical.bonding_wire import BondWire


@dataclass(frozen=True)
class PadConfig:
    """Geometry and electrical parameters of a conventional I/O pad.

    Attributes
    ----------
    pad_width, pad_height:
        Pad opening dimensions [m]; 60-80 um pads are typical for wire bonding.
    pitch:
        Centre-to-centre pad pitch along the die edge [m].
    driver_area:
        Area of the output driver + ESD structures [m^2].
    pad_capacitance:
        Pad + ESD + package capacitance seen by the driver [F].
    supply_voltage:
        I/O supply [V].
    voltage_swing:
        Signal swing on the wire [V] (full swing by default).
    leakage_power:
        Static power of the pad cell [W].
    """

    pad_width: float = 70.0 * UM
    pad_height: float = 70.0 * UM
    pitch: float = 90.0 * UM
    driver_area: float = 60.0 * UM * 100.0 * UM
    pad_capacitance: float = 2.0e-12
    supply_voltage: float = 2.5
    voltage_swing: float = 2.5
    leakage_power: float = 1.0e-6

    def __post_init__(self) -> None:
        if self.pad_width <= 0 or self.pad_height <= 0:
            raise ValueError("pad dimensions must be positive")
        if self.pitch < max(self.pad_width, self.pad_height):
            raise ValueError("pitch must be at least the pad size")
        if self.pad_capacitance <= 0:
            raise ValueError("pad_capacitance must be positive")
        if self.supply_voltage <= 0 or self.voltage_swing <= 0:
            raise ValueError("voltages must be positive")


class IoPad:
    """A conventional wire-bonded I/O pad channel."""

    def __init__(self, config: PadConfig = PadConfig(), wire: Optional[BondWire] = None) -> None:
        self.config = config
        self.wire = wire if wire is not None else BondWire()

    @property
    def area(self) -> float:
        """Total silicon area of pad + driver [m^2]."""
        return self.config.pad_width * self.config.pad_height + self.config.driver_area

    @property
    def edge_length(self) -> float:
        """Die-edge length consumed per pad [m]."""
        return self.config.pitch

    def max_bit_rate(self) -> float:
        """Bit rate limit imposed by the bond-wire parasitics [bit/s]."""
        return self.wire.max_bit_rate(self.config.pad_capacitance)

    def energy_per_bit(self) -> float:
        """Switching energy per transmitted bit [J/bit].

        0.5 transitions per bit on random data, charging the pad + wire
        capacitance through the full swing: E = 0.5 · C · V_swing · V_dd.
        """
        total_c = self.config.pad_capacitance + self.wire.capacitance
        return 0.5 * total_c * self.config.voltage_swing * self.config.supply_voltage

    def power_at(self, bit_rate: float) -> float:
        """Average power when running at ``bit_rate`` [W]."""
        if bit_rate < 0:
            raise ValueError("bit_rate must be non-negative")
        if bit_rate > self.max_bit_rate():
            raise ValueError(
                f"bit_rate {bit_rate:.3e} exceeds the bond-wire limit "
                f"{self.max_bit_rate():.3e}"
            )
        return self.energy_per_bit() * bit_rate + self.config.leakage_power

    def bandwidth_density(self) -> float:
        """Achievable bit rate per metre of die edge [bit/s/m]."""
        return self.max_bit_rate() / self.edge_length

    def drive_current(self, bit_rate: float) -> float:
        """Average drive current at ``bit_rate`` [A]."""
        return self.wire.current_for_bit_rate(
            bit_rate, self.config.pad_capacitance, self.config.voltage_swing
        )

    def switching_noise(self, bit_rate: float, simultaneous_pads: int = 1) -> float:
        """Aggregate L·dI/dt noise when ``simultaneous_pads`` switch together [V]."""
        if simultaneous_pads <= 0:
            raise ValueError("simultaneous_pads must be positive")
        rise_time = 0.35 / self.max_bit_rate()
        per_pad = self.wire.simultaneous_switching_noise(
            self.drive_current(bit_rate) * 2.0, rise_time
        )
        return per_pad * simultaneous_pads
