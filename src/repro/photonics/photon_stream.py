"""Photon-stream generation.

Light is quantised: a pulse of mean optical energy ``E`` at wavelength ``λ``
carries a Poisson-distributed number of photons with mean ``E / (h·c/λ)``.
The SPAD receiver cares about *when* individual photons arrive, so the helpers
here convert pulse energies into photon counts and sample per-photon arrival
times within the (trapezoidal) pulse envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.units import photon_energy
from repro.simulation.randomness import RandomSource


@dataclass(frozen=True)
class PhotonPulse:
    """A transmitted optical pulse, described statistically.

    Attributes
    ----------
    emission_time:
        Nominal start time of the pulse [s].
    duration:
        Pulse width [s].
    mean_photons:
        Mean number of photons in the pulse *at the receiver* (after channel
        losses have been applied).
    wavelength:
        Photon wavelength [m].
    """

    emission_time: float
    duration: float
    mean_photons: float
    wavelength: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.mean_photons < 0:
            raise ValueError("mean_photons must be non-negative")
        if self.wavelength <= 0:
            raise ValueError("wavelength must be positive")

    @property
    def mean_energy(self) -> float:
        """Mean optical energy of the pulse [J]."""
        return self.mean_photons * photon_energy(self.wavelength)

    def attenuated(self, transmission: float) -> "PhotonPulse":
        """The same pulse after passing a channel with the given power transmission."""
        if not 0 <= transmission <= 1:
            raise ValueError("transmission must be within [0, 1]")
        return PhotonPulse(
            emission_time=self.emission_time,
            duration=self.duration,
            mean_photons=self.mean_photons * transmission,
            wavelength=self.wavelength,
        )


def poisson_photon_count(mean_photons: float, random_source: RandomSource) -> int:
    """Actual photon count of one pulse (Poisson statistics)."""
    if mean_photons < 0:
        raise ValueError("mean_photons must be non-negative")
    return random_source.poisson(mean_photons)


def pulse_arrival_times(
    pulse: PhotonPulse,
    random_source: RandomSource,
    count: Optional[int] = None,
) -> np.ndarray:
    """Arrival times of the individual photons of ``pulse`` [s], sorted.

    When ``count`` is omitted the photon number is drawn from the Poisson
    distribution.  Photons are distributed uniformly within the pulse width —
    adequate for pulses much shorter than a PPM slot.
    """
    if count is None:
        count = poisson_photon_count(pulse.mean_photons, random_source)
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return np.empty(0)
    offsets = random_source.uniform_array(0.0, pulse.duration, count)
    return np.sort(pulse.emission_time + offsets)


def detection_probability(mean_photons: float, pdp: float) -> float:
    """Probability that a Poisson pulse triggers a detector with efficiency ``pdp``.

    ``1 - exp(-pdp · mean_photons)`` — the workhorse formula of the link
    budget: it converts "photons per pulse at the SPAD" into "probability the
    symbol is detected at all".
    """
    if mean_photons < 0:
        raise ValueError("mean_photons must be non-negative")
    if not 0 <= pdp <= 1:
        raise ValueError("pdp must be within [0, 1]")
    return float(1.0 - np.exp(-pdp * mean_photons))


def photons_for_detection_probability(target_probability: float, pdp: float) -> float:
    """Mean photons per pulse needed to reach a target detection probability."""
    if not 0 < target_probability < 1:
        raise ValueError("target_probability must be within (0, 1)")
    if not 0 < pdp <= 1:
        raise ValueError("pdp must be within (0, 1]")
    return float(-np.log(1.0 - target_probability) / pdp)
