"""Tests for repro.core.fastlink — the vectorised batch transmission engine.

The batch path must be statistically equivalent to the scalar path (same
physics, same distributions) and individually deterministic per seed; it is
*not* required to be draw-for-draw identical to the scalar path.
"""

import numpy as np
import pytest

from repro.analysis.units import NS, PS
from repro.core.ber import monte_carlo_bit_error_rate
from repro.core.config import LinkConfig
from repro.core.fastlink import FastOpticalLink
from repro.core.link import OpticalLink, TransmissionResult
from repro.spad.device import ORIGIN_BY_CODE


MODERATE = LinkConfig(ppm_bits=4, mean_detected_photons=5.0)
BRIGHT = LinkConfig(ppm_bits=4, mean_detected_photons=200.0)


class TestStatisticalEquivalence:
    """Scalar vs. batch on identical configs, within Monte-Carlo tolerance."""

    BITS = 24_000

    @pytest.fixture(scope="class")
    def pair(self):
        scalar = OpticalLink(MODERATE, seed=42).transmit_random(self.BITS)
        batch = FastOpticalLink(MODERATE, seed=42).transmit_random(self.BITS)
        return scalar, batch

    def test_ber_within_monte_carlo_tolerance(self, pair):
        scalar, batch = pair
        # Binomial std of each estimate, doubled for symbol-correlated bit
        # errors, 5 sigma on the combined difference.
        p = max(scalar.bit_error_rate, 1.0 / self.BITS)
        tolerance = 5.0 * 2.0 * np.sqrt(2.0 * p * (1 - p) / self.BITS)
        assert abs(scalar.bit_error_rate - batch.bit_error_rate) < tolerance

    def test_ser_within_monte_carlo_tolerance(self, pair):
        scalar, batch = pair
        symbols = scalar.symbols_sent
        assert batch.symbols_sent == symbols
        p = max(scalar.symbol_error_rate, 1.0 / symbols)
        tolerance = 5.0 * np.sqrt(2.0 * p * (1 - p) / symbols)
        assert abs(scalar.symbol_error_rate - batch.symbol_error_rate) < tolerance

    def test_detection_origin_distributions_match(self, pair):
        scalar, batch = pair
        symbols = scalar.symbols_sent
        assert set(scalar.detection_counts) == set(batch.detection_counts)
        for origin in scalar.detection_counts:
            p = max(scalar.detection_counts[origin] / symbols, 1.0 / symbols)
            tolerance = 5.0 * np.sqrt(2.0 * p * (1 - p) / symbols)
            delta = abs(scalar.detection_counts[origin] - batch.detection_counts[origin])
            assert delta / symbols < tolerance, origin

    def test_error_free_regime_agrees_exactly(self):
        # Wide slots push the jitter mis-slot probability to ~1e-5/symbol, so
        # both paths must round-trip the payload exactly.
        config = LinkConfig(ppm_bits=4, slot_duration=4 * NS, mean_detected_photons=200.0)
        payload = [1, 0, 1, 1, 0, 0, 1, 0] * 4
        scalar = OpticalLink(config, seed=1).transmit_bits(payload)
        batch = FastOpticalLink(config, seed=1).transmit_bits(payload)
        assert scalar.bit_errors == 0
        assert batch.bit_errors == 0
        assert batch.received_bits == payload

    def test_ber_estimator_backend_paths_agree(self):
        # backend= is the only engine selector (the legacy fast= boolean was
        # removed with PR 3); both spellings of the estimator must agree.
        fast = monte_carlo_bit_error_rate(MODERATE, bits=8000, seed=3, backend="batch")
        scalar = monte_carlo_bit_error_rate(MODERATE, bits=8000, seed=3, backend="scalar")
        assert fast.ber == pytest.approx(scalar.ber, abs=5.0 * (fast.confidence_95 + scalar.confidence_95))


class TestDeterminism:
    def test_same_seed_identical_result(self):
        a = FastOpticalLink(MODERATE, seed=9).transmit_random(4000)
        b = FastOpticalLink(MODERATE, seed=9).transmit_random(4000)
        assert a.received_bits == b.received_bits
        assert a.transmitted_bits == b.transmitted_bits
        assert a.symbol_errors == b.symbol_errors
        assert a.detection_counts == b.detection_counts
        assert a.elapsed_time == b.elapsed_time

    def test_different_seed_differs(self):
        a = FastOpticalLink(MODERATE, seed=9).transmit_random(4000)
        b = FastOpticalLink(MODERATE, seed=10).transmit_random(4000)
        assert a.received_bits != b.received_bits


class TestBatchContract:
    def test_payload_preserved_and_padded(self):
        link = FastOpticalLink(BRIGHT, seed=2)
        payload = [1, 0, 1, 1, 0]  # 5 bits -> padded to 8
        result = link.transmit_bits(payload)
        assert isinstance(result, TransmissionResult)
        assert result.transmitted_bits == payload
        assert len(result.received_bits) == len(payload)
        assert result.symbols_sent == 2

    def test_zero_photons_loses_everything(self):
        link = FastOpticalLink(LinkConfig(ppm_bits=4, mean_detected_photons=0.0), seed=3)
        result = link.transmit_bits([1] * 16)
        assert result.detection_counts["missed"] == result.symbols_sent
        assert result.bit_errors > 0

    def test_throughput_matches_configuration(self):
        link = FastOpticalLink(MODERATE, seed=4)
        result = link.transmit_random(400)
        assert result.throughput == pytest.approx(MODERATE.raw_bit_rate, rel=1e-6)

    def test_validation(self):
        link = FastOpticalLink(seed=0)
        with pytest.raises(ValueError):
            link.transmit_bits([])
        with pytest.raises(ValueError):
            link.transmit_bits([2])
        with pytest.raises(ValueError):
            # Fractional values must not be silently truncated to valid bits.
            link.transmit_bits([0.5])
        with pytest.raises(ValueError):
            link.transmit_random(0)

    def test_received_bits_are_plain_ints(self):
        result = FastOpticalLink(BRIGHT, seed=5).transmit_bits([1, 0, 1, 1])
        assert all(isinstance(bit, int) for bit in result.received_bits)


class TestSpadBatchWindows:
    def test_origin_codes_cover_enum(self):
        assert {origin.value for origin in ORIGIN_BY_CODE.values()} == {
            "photon",
            "dark_count",
            "afterpulse",
            "crosstalk",
        }

    def test_empty_batch(self):
        link = FastOpticalLink(MODERATE, seed=6)
        times, origins = link.spad.detect_in_windows(32 * NS, np.empty(0))
        assert times.size == 0 and origins.size == 0

    def test_nan_offsets_mean_no_pulse(self):
        link = FastOpticalLink(LinkConfig(ppm_bits=4, mean_detected_photons=500.0), seed=6)
        offsets = np.full(64, np.nan)
        times, origins = link.spad.detect_in_windows(32 * NS, offsets, mean_photons=500.0)
        # Without pulses only (rare) dark counts can fire.
        assert not np.any(origins == 0)

    def test_detection_times_lie_inside_their_windows(self):
        link = FastOpticalLink(MODERATE, seed=7)
        duration = MODERATE.symbol_duration
        offsets = np.full(256, 1.0 * NS)
        times, origins = link.spad.detect_in_windows(duration, offsets, mean_photons=50.0)
        detected = origins >= 0
        relative = times[detected] - np.flatnonzero(detected) * duration
        assert np.all(relative >= 0)
        assert np.all(relative < duration)

    def test_offset_validation(self):
        link = FastOpticalLink(MODERATE, seed=8)
        with pytest.raises(ValueError):
            link.spad.detect_in_windows(32 * NS, np.array([-1.0 * NS]))
        with pytest.raises(ValueError):
            link.spad.detect_in_windows(32 * NS, np.array([40 * NS]))
        with pytest.raises(ValueError):
            link.spad.detect_in_windows(0.0, np.array([1.0 * NS]))

    def test_batch_cannot_start_before_last_avalanche(self):
        # Mirrors the scalar ``rearm`` guard: device state cannot go backwards.
        link = FastOpticalLink(BRIGHT, seed=9)
        link.transmit_bits([1, 0] * 20)
        assert link.spad._last_fire_time is not None
        with pytest.raises(ValueError):
            link.spad.detect_in_windows(32 * NS, np.array([1.0 * NS]))
        # Chaining forward from the current state is fine.
        times, origins = link.spad.detect_in_windows(
            32 * NS, np.array([1.0 * NS]), mean_photons=200.0, start_time=1e-6
        )
        assert times.size == 1
