"""Tier-1 tests of repro.cluster — distributed chunk-level execution.

The contracts under test, in the order the subsystem sells them:

* **chunk fan-out is exact** — splitting any eligible point into K chunk
  tasks (absolute-offset chunk seeds), evaluating them in any order and
  folding them back yields outcomes *bit-identical* to the unsplit run,
  for both backends and both seed policies;
* **the wire changes nothing** — tasks and outcome accumulators round-trip
  the newline-delimited JSON protocol exactly (floats via repr);
* **cluster == serial** — a real socket fleet (in-process ``ClusterWorker``
  threads on ephemeral localhost ports) produces reports byte-identical to
  :class:`SerialExecutor` for every named scenario, including ``spad-array-
  imager`` with a fan-out factor > 1;
* **failure semantics mirror the process pool** — a worker killed mid-task
  has its chunk requeued elsewhere (one charged attempt, report unchanged),
  retryable errors replay bit-identically, exhausted points re-raise under
  ``fail_fast`` and land as :class:`PointFailure` under ``continue``, and a
  hung chunk trips ``retry.timeout``;
* **shared validation** — the process pool's worker count and the cluster's
  fan-out reject bad values with the same typed :class:`WorkerCountError`.

Socket-driving tests carry the ``cluster`` marker; the chunk/wire layers
are plain unit tests.
"""

import random
import time

import pytest

from repro.cluster import (
    ClusterExecutor,
    ClusterTaskError,
    ClusterWorker,
    WorkerDeath,
    fan_out_eligible,
    merge_chunk_outcomes,
    outcome_from_wire,
    outcome_to_wire,
    parse_address,
    parse_addresses,
    probe_worker,
    split_point_task,
    task_from_wire,
    task_to_wire,
)
from repro.scenarios import (
    PointFailure,
    ProcessExecutor,
    RetryPolicy,
    Scenario,
    SerialExecutor,
    WorkerCountError,
    get_scenario,
    named_scenarios,
    run_scenario,
)
from repro.scenarios.executors import (
    evaluate_task,
    make_point_tasks,
    resolve_executor,
    validate_worker_count,
)
from repro.scenarios.faults import WorkerLostError


def small_scenario(seed_policy="per-point", channels=1):
    return Scenario(
        name="cluster-unit",
        link_overrides={"ppm_bits": 2},
        sweep_axes={"mean_detected_photons": (20.0, 45.0)},
        bits_per_point=2048,
        channels=channels,
        backend="multichannel" if channels > 1 else "batch",
        seed_policy=seed_policy,
    )


# -- chunk fan-out (no sockets) ------------------------------------------------
class TestChunkSplit:
    def test_chunks_partition_the_symbol_range_on_chunk_boundaries(self):
        scenario = small_scenario()
        (task, _other) = make_point_tasks(scenario, seed=3, backend="batch",
                                          chunk_symbols=64)[:2]
        chunks = split_point_task(scenario, task, fan_out=5)
        assert len(chunks) == 5
        cursor = task.start_symbol
        for chunk in chunks:
            assert chunk.start_symbol == cursor
            assert chunk.start_symbol % task.chunk_symbols == 0
            cursor += chunk.symbols
        assert cursor - task.start_symbol == 1024  # 2048 bits / 2 bits-per-symbol

    def test_fan_out_is_capped_by_the_chunk_count(self):
        scenario = small_scenario()
        task = make_point_tasks(scenario, seed=3, backend="batch",
                                chunk_symbols=512)[0]
        # 1024 symbols / 512 per chunk = 2 chunks; fan-out cannot exceed it.
        chunks = split_point_task(scenario, task, fan_out=16)
        assert len(chunks) == 2

    def test_fan_out_of_one_and_importance_points_stay_unsplit(self):
        scenario = small_scenario()
        task = make_point_tasks(scenario, seed=3, backend="batch",
                                chunk_symbols=64)[0]
        assert split_point_task(scenario, task, fan_out=1) == [task]
        weighted = small_scenario().with_trial_mode("importance")
        wtask = make_point_tasks(weighted, seed=3, backend="batch",
                                 chunk_symbols=64)[0]
        assert not fan_out_eligible(weighted, wtask)
        assert split_point_task(weighted, wtask, fan_out=8) == [wtask]

    def test_noc_points_stay_unsplit(self):
        scenario = get_scenario("noc-load-latency").with_budget(2048)
        task = make_point_tasks(scenario, seed=3, backend=scenario.backend,
                                chunk_symbols=64)[0]
        assert not fan_out_eligible(scenario, task)

    @pytest.mark.parametrize("backend,channels", [("batch", 1), ("multichannel", 4)])
    @pytest.mark.parametrize("seed_policy", ["shared", "per-point"])
    def test_shuffled_chunk_merge_is_bit_identical_to_the_unsplit_run(
        self, backend, channels, seed_policy
    ):
        scenario = small_scenario(seed_policy=seed_policy, channels=channels)
        for task in make_point_tasks(scenario, seed=11, backend=backend,
                                     chunk_symbols=64):
            unsplit = evaluate_task(task)
            chunks = split_point_task(scenario, task, fan_out=4)
            assert len(chunks) == 4
            shuffled = list(chunks)
            random.Random(task.index).shuffle(shuffled)
            parts = {}
            for position, chunk in enumerate(shuffled):
                # "Worker death" mid-run: the first chunk's first attempt is
                # discarded and the chunk re-evaluated — determinism makes
                # the requeued attempt indistinguishable.
                if position == 0:
                    evaluate_task(chunk)
                parts[chunk.start_symbol] = evaluate_task(chunk)
            merged = merge_chunk_outcomes(parts)
            assert merged.to_accumulator_mapping() == unsplit.to_accumulator_mapping()
            assert merged.detection_counts == unsplit.detection_counts

    def test_merge_refuses_an_empty_part_set(self):
        with pytest.raises(ValueError, match="no chunk outcomes"):
            merge_chunk_outcomes({})


# -- the wire (no sockets) -----------------------------------------------------
class TestWireFormats:
    def test_task_round_trips_as_plain_data(self):
        scenario = small_scenario()
        task = make_point_tasks(scenario, seed=5, backend="batch",
                                chunk_symbols=64)[1]
        rebuilt = task_from_wire(task_to_wire(task))
        assert rebuilt.live_scenario is None
        assert rebuilt.seed == task.seed and rebuilt.index == task.index
        assert rebuilt.parameters == dict(task.parameters)
        out_a = evaluate_task(task)
        out_b = evaluate_task(rebuilt)
        assert out_a.to_accumulator_mapping() == out_b.to_accumulator_mapping()

    def test_outcome_round_trips_bit_for_bit(self):
        scenario = small_scenario(channels=4)
        task = make_point_tasks(scenario, seed=5, backend="multichannel",
                                chunk_symbols=64)[0]
        outcome = evaluate_task(task)
        wired = outcome_from_wire(outcome.config, outcome_to_wire(outcome))
        assert wired.to_accumulator_mapping() == outcome.to_accumulator_mapping()
        assert wired.detection_counts == outcome.detection_counts

    def test_noc_outcome_carries_its_bus_counters(self):
        scenario = get_scenario("noc-load-latency").with_budget(2048)
        task = make_point_tasks(scenario, seed=5, backend=scenario.backend,
                                chunk_symbols=256)[0]
        outcome = evaluate_task(task)
        assert outcome.noc is not None
        wired = outcome_from_wire(outcome.config, outcome_to_wire(outcome))
        assert wired.noc == outcome.noc

    def test_address_parsing(self):
        assert parse_address("somehost:70") == ("somehost", 70)
        assert parse_addresses("a:1, b:2") == (("a", 1), ("b", 2))
        assert parse_addresses([("c", 3)]) == (("c", 3),)
        with pytest.raises(ValueError, match="host:port"):
            parse_address("no-port")
        with pytest.raises(ValueError, match="no worker addresses"):
            parse_addresses("")


# -- shared worker-count validation (satellite: typed errors) -------------------
class TestWorkerCountValidation:
    def test_process_executor_rejects_non_positive_counts(self):
        with pytest.raises(WorkerCountError, match="positive int"):
            ProcessExecutor(workers=0)
        with pytest.raises(WorkerCountError, match="positive int"):
            ProcessExecutor(workers=-2)

    def test_bools_and_non_ints_are_rejected(self):
        with pytest.raises(WorkerCountError):
            validate_worker_count(True)
        with pytest.raises(WorkerCountError):
            validate_worker_count(2.0)
        assert validate_worker_count(None) is None
        assert validate_worker_count(3) == 3

    def test_cluster_executor_rejects_a_pool_size(self):
        with pytest.raises(WorkerCountError, match="addresses"):
            ClusterExecutor(workers=4)

    def test_cluster_fan_out_shares_the_validation(self):
        with pytest.raises(WorkerCountError, match="positive int"):
            ClusterExecutor(workers="h:1", fan_out=0)

    def test_resolver_routes_by_workers_shape(self):
        assert isinstance(resolve_executor(None, workers=2), ProcessExecutor)
        cluster = resolve_executor(None, workers="127.0.0.1:1")
        assert isinstance(cluster, ClusterExecutor)
        cluster.close()
        with pytest.raises(WorkerCountError, match="pool size"):
            resolve_executor("process", workers="127.0.0.1:1")


# -- real sockets --------------------------------------------------------------
@pytest.fixture()
def fleet():
    """Two live listen-mode workers on ephemeral localhost ports."""
    workers = [ClusterWorker(listen="127.0.0.1:0", name=f"w{i}") for i in range(2)]
    addresses = [worker.start() for worker in workers]
    yield addresses
    for worker in workers:
        worker.stop()


@pytest.mark.cluster
class TestClusterExecutor:
    def test_cluster_report_is_bit_identical_to_serial(self, fleet):
        scenario = small_scenario(channels=1)
        serial = run_scenario(scenario, seed=9, chunk_symbols=64)
        with ClusterExecutor(workers=fleet, fan_out=4) as executor:
            clustered = run_scenario(scenario, seed=9, chunk_symbols=64,
                                     executor=executor)
            assert executor.stats["chunk_tasks"] > len(serial.points)
        assert clustered.to_mapping() == serial.to_mapping()

    def test_run_scenario_accepts_address_workers(self, fleet):
        scenario = small_scenario()
        addresses = ",".join(f"{host}:{port}" for host, port in fleet)
        serial = run_scenario(scenario, seed=2, chunk_symbols=64)
        clustered = run_scenario(scenario, seed=2, chunk_symbols=64,
                                 workers=addresses)
        assert clustered.to_mapping() == serial.to_mapping()

    def test_worker_death_mid_run_requeues_and_stays_bit_identical(self, fleet):
        class DoomedWorker(ClusterWorker):
            def __init__(self, **kwargs):
                super().__init__(**kwargs)
                self.fuse = 1  # die on the first task, work normally never

            def evaluate(self, task, attempt):
                if self.fuse:
                    self.fuse -= 1
                    raise WorkerDeath("simulated SIGKILL")
                return super().evaluate(task, attempt)

        doomed = DoomedWorker(listen="127.0.0.1:0", name="doomed")
        address = doomed.start()
        try:
            scenario = small_scenario()
            serial = run_scenario(scenario, seed=4, chunk_symbols=64)
            retry = RetryPolicy(max_attempts=2)
            with ClusterExecutor(workers=[address, *fleet], fan_out=4,
                                 retry=retry, heartbeat_timeout=5.0) as executor:
                clustered = run_scenario(scenario, seed=4, chunk_symbols=64,
                                         executor=executor)
                assert executor.stats["tasks_requeued"] >= 1
                assert executor.stats["workers_lost"] >= 1
            assert clustered.to_mapping() == serial.to_mapping()
        finally:
            doomed.stop()

    def test_retryable_worker_errors_replay_bit_identically(self, fleet):
        class FlakyWorker(ClusterWorker):
            def evaluate(self, task, attempt):
                if attempt == 1:
                    raise ValueError("transient fault")
                return super().evaluate(task, attempt)

        flaky = FlakyWorker(listen="127.0.0.1:0", name="flaky")
        address = flaky.start()
        try:
            scenario = small_scenario()
            tasks = make_point_tasks(scenario, seed=6, backend="batch",
                                     chunk_symbols=64)
            serial = dict(SerialExecutor().map_tasks(tasks))
            with ClusterExecutor(workers=[address],
                                 retry=RetryPolicy(max_attempts=2)) as executor:
                clustered = dict(executor.map_tasks(tasks))
                assert executor.stats["retries"] >= len(tasks)
            for index, outcome in serial.items():
                assert (clustered[index].to_accumulator_mapping()
                        == outcome.to_accumulator_mapping())
        finally:
            flaky.stop()

    def test_exhausted_points_fail_fast_or_continue(self, fleet):
        class BrokenWorker(ClusterWorker):
            def evaluate(self, task, attempt):
                raise ValueError("permanent fault")

        broken = BrokenWorker(listen="127.0.0.1:0", name="broken")
        address = broken.start()
        try:
            scenario = small_scenario()
            tasks = make_point_tasks(scenario, seed=6, backend="batch",
                                     chunk_symbols=64)
            with ClusterExecutor(workers=[address]) as executor:
                with pytest.raises(ClusterTaskError, match="permanent fault") as info:
                    list(executor.map_tasks(tasks))
                assert info.value.error_type == "ValueError"
            with ClusterExecutor(workers=[address],
                                 failure_policy="continue") as executor:
                results = dict(executor.map_tasks(tasks))
            assert len(results) == len(tasks)
            for failure in results.values():
                assert isinstance(failure, PointFailure)
                assert failure.error_type == "ValueError"
        finally:
            broken.stop()

    def test_hung_chunks_trip_the_retry_timeout(self, fleet):
        class HungWorker(ClusterWorker):
            def evaluate(self, task, attempt):
                time.sleep(5.0)
                return super().evaluate(task, attempt)

        hung = HungWorker(listen="127.0.0.1:0", name="hung",
                          heartbeat_interval=0.1)
        address = hung.start()
        try:
            scenario = small_scenario()
            tasks = make_point_tasks(scenario, seed=6, backend="batch",
                                     chunk_symbols=64)[:1]
            retry = RetryPolicy(max_attempts=1, timeout=0.4)
            with ClusterExecutor(workers=[address], retry=retry) as executor:
                started = time.monotonic()
                with pytest.raises(Exception) as info:
                    list(executor.map_tasks(tasks))
                assert time.monotonic() - started < 4.0
            assert type(info.value).__name__ in ("PointTimeoutError", "WorkerLostError")
        finally:
            hung.stop()

    def test_no_reachable_workers_is_a_typed_startup_error(self):
        scenario = small_scenario()
        tasks = make_point_tasks(scenario, seed=6, backend="batch",
                                 chunk_symbols=64)
        with ClusterExecutor(workers="127.0.0.1:9",
                             connect_timeout=0.3) as executor:
            with pytest.raises(RuntimeError, match="no cluster workers reachable"):
                list(executor.map_tasks(tasks))

    def test_probe_worker_reports_status_and_unreachable(self, fleet):
        row = probe_worker(fleet[0])
        assert row["name"] == "w0"
        assert row["state"] in ("idle", "busy")
        assert "pid" in row and "uptime" in row
        dead = probe_worker("127.0.0.1:9", timeout=0.3)
        assert dead["state"] == "unreachable"

    def test_subclassed_scenarios_refuse_the_wire(self, fleet):
        class CustomScenario(Scenario):
            pass

        scenario = CustomScenario(name="custom", bits_per_point=64)
        tasks = make_point_tasks(scenario, seed=1, backend="batch",
                                 chunk_symbols=64)
        with ClusterExecutor(workers=fleet) as executor:
            with pytest.raises(TypeError, match="cluster wire"):
                list(executor.map_tasks(tasks))


@pytest.mark.cluster
class TestFleetWideBitIdentity:
    def test_every_named_scenario_matches_serial_over_the_fleet(self, fleet):
        with ClusterExecutor(workers=fleet, fan_out=3) as executor:
            for name in named_scenarios():
                scenario = get_scenario(name).with_budget(128)
                serial = run_scenario(scenario, seed=1, chunk_symbols=64)
                clustered = run_scenario(scenario, seed=1, chunk_symbols=64,
                                         executor=executor)
                assert clustered.to_mapping() == serial.to_mapping(), name

    def test_spad_array_imager_fans_out_and_stays_identical(self, fleet):
        scenario = get_scenario("spad-array-imager").with_budget(8192)
        serial = run_scenario(scenario, seed=13, chunk_symbols=256)
        with ClusterExecutor(workers=fleet, fan_out=4) as executor:
            clustered = run_scenario(scenario, seed=13, chunk_symbols=256,
                                     executor=executor)
            assert executor.stats["max_fan_out"] > 1
        assert clustered.to_mapping() == serial.to_mapping()

    def test_adaptive_budget_waves_reuse_the_fleet(self, fleet):
        scenario = small_scenario().with_trial_mode(
            "naive", ci_target=2e-2, max_symbols=4096
        )
        serial = run_scenario(scenario, seed=21, chunk_symbols=64)
        with ClusterExecutor(workers=fleet, fan_out=2) as executor:
            clustered = run_scenario(scenario, seed=21, chunk_symbols=64,
                                     executor=executor)
        assert clustered.to_mapping() == serial.to_mapping()
