"""Compute-kernel registry and bit-identity tests.

The load-bearing contract of :mod:`repro.kernels`: every registered kernel
is **bit-identical** to the ``"python"`` reference — same detection times,
same origins, same carried detector state, same arbitration grants — so
kernel selection (explicit, ``REPRO_KERNEL``, or ``"auto"``) can never change
a report.  The suite locks that at three levels:

* raw kernel functions on randomised inputs (scan, resolve, arbitration);
* the arbitration schedule against the scalar :class:`RoundRobinArbiter`
  grant loop, including committed queue/rotation state;
* whole experiment reports across named scenarios, seed policies and the
  importance trial mode.
"""

import numpy as np
import pytest

from repro.kernels import (
    KERNEL_NAMES,
    available_kernels,
    get_kernel,
    round_robin_schedule,
)
from repro.kernels import reference
from repro.noc.arbitration import RoundRobinArbiter
from repro.scenarios import (
    ExperimentRunner,
    Scenario,
    get_scenario,
    named_scenarios,
)

DURATION = 2e-8
DEAD_TIME = 1.1e-8
GATE_RECOVERY = 2e-9


def _per_cell_sorted(rng, bounds, high):
    """Uniform arrival offsets, sorted within each CSR cell segment."""
    values = rng.uniform(0.0, high, int(bounds[-1]))
    for cell in range(bounds.size - 1):
        segment = slice(int(bounds[cell]), int(bounds[cell + 1]))
        values[segment] = np.sort(values[segment])
    return values


def _scan_inputs(rng, windows=400):
    """Randomised device-scan inputs exercising every origin branch."""
    counts = rng.integers(0, 3, windows)
    bounds = np.zeros(windows + 1, dtype=np.int64)
    np.cumsum(counts, out=bounds[1:])
    return {
        "photon_rel": rng.uniform(0.0, DURATION, windows),
        "photon_valid": rng.random(windows) < 0.7,
        "dark_rel": _per_cell_sorted(rng, bounds, DURATION),
        "dark_bounds": bounds,
        "trap_filled": rng.random(windows) < 0.4,
        "trap_release": rng.uniform(0.0, 4.0 * DURATION, windows),
    }


def _resolve_inputs(rng, windows=96, channels=5, secondaries=2):
    """Randomised multichannel resolver inputs (inf = no candidate)."""
    primary = rng.uniform(0.0, DURATION, (windows, channels))
    primary[rng.random((windows, channels)) < 0.4] = np.inf
    secondary = rng.uniform(0.0, DURATION, (secondaries, windows, channels))
    secondary[rng.random(secondary.shape) < 0.6] = np.inf
    cells = windows * channels
    dark_counts = rng.integers(0, 2, cells)
    dark_bounds = np.zeros(cells + 1, dtype=np.int64)
    np.cumsum(dark_counts, out=dark_bounds[1:])
    background_counts = rng.integers(0, 2, cells)
    background_bounds = np.zeros(cells + 1, dtype=np.int64)
    np.cumsum(background_counts, out=background_bounds[1:])
    return {
        "primary": primary,
        "secondary": secondary,
        "dark_rel": _per_cell_sorted(rng, dark_bounds, DURATION),
        "dark_bounds": dark_bounds,
        "background_rel": _per_cell_sorted(rng, background_bounds, DURATION),
        "background_bounds": background_bounds,
        "trap_filled": rng.random((windows, channels)) < 0.4,
        "trap_release": rng.uniform(0.0, 4.0 * DURATION, (windows, channels)),
    }


class TestRegistry:
    def test_reference_tiers_are_always_available(self):
        names = available_kernels()
        assert "python" in names and "vector" in names
        assert set(names) <= set(KERNEL_NAMES)
        assert "auto" not in names  # a resolution rule, not a kernel

    def test_named_lookup_and_auto_resolution(self):
        assert get_kernel("python").name == "python"
        assert get_kernel("vector").name == "vector"
        # auto resolves to a registered kernel, preferring native tiers.
        assert get_kernel("auto").name in available_kernels()
        assert get_kernel(None).name == get_kernel("auto").name

    def test_unknown_name_is_an_error(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            get_kernel("cuda")

    def test_environment_drives_default_but_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "python")
        assert get_kernel().name == "python"
        assert get_kernel("vector").name == "vector"
        monkeypatch.setenv("REPRO_KERNEL", "not-a-kernel")
        with pytest.raises(ValueError, match="unknown kernel"):
            get_kernel()

    def test_unavailable_kernel_warns_once_and_falls_back(self):
        from repro.kernels import _warn_unavailable

        missing = [
            name
            for name in KERNEL_NAMES
            if name != "auto" and name not in available_kernels()
        ]
        if not missing:
            pytest.skip("every kernel tier is available in this environment")
        _warn_unavailable.cache_clear()
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert get_kernel(missing[0]).name == "python"
        # The degradation is reported once, not per chunk.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert get_kernel(missing[0]).name == "python"

    def test_python_kernel_has_no_native_resolver_or_arbiter(self):
        # By design: under "python" the array layer keeps its in-module fast
        # path and the bus keeps its scalar grant loop.
        kernel = get_kernel("python")
        assert kernel.resolve_windows is None
        assert kernel.arbitrate is None


class TestScanBitIdentity:
    @pytest.mark.parametrize("seed", range(3))
    def test_every_kernel_matches_the_reference_scan(self, seed):
        rng = np.random.default_rng(seed)
        inputs = _scan_inputs(rng)
        args = (
            inputs["photon_rel"], inputs["photon_valid"],
            inputs["dark_rel"], inputs["dark_bounds"],
            inputs["trap_filled"], inputs["trap_release"],
            DEAD_TIME, GATE_RECOVERY, DURATION,
            0.0, -np.inf, np.inf,
        )
        ref_times, ref_origins, ref_fire, ref_pending = reference.scan_windows(*args)
        for name in available_kernels():
            times, origins, fire, pending = get_kernel(name).scan_windows(*args)
            assert np.array_equal(times, ref_times, equal_nan=True), name
            assert np.array_equal(origins, ref_origins), name
            assert (fire, pending) == (ref_fire, ref_pending), name

    def test_state_carries_across_calls_identically(self):
        # The scan's cross-chunk state (last fire, pending afterpulse) must
        # round-trip through every kernel exactly, or chunked runs diverge.
        rng = np.random.default_rng(7)
        first = _scan_inputs(rng, windows=50)
        second = _scan_inputs(rng, windows=50)
        results = {}
        for name in available_kernels():
            kernel = get_kernel(name)
            fire, pending = -np.inf, np.inf
            outputs = []
            for base, inputs in ((0.0, first), (50 * DURATION, second)):
                times, origins, fire, pending = kernel.scan_windows(
                    inputs["photon_rel"], inputs["photon_valid"],
                    inputs["dark_rel"], inputs["dark_bounds"],
                    inputs["trap_filled"], inputs["trap_release"],
                    DEAD_TIME, GATE_RECOVERY, DURATION, base, fire, pending,
                )
                outputs.append((times, origins))
            results[name] = (outputs, fire, pending)
        reference_result = results["python"]
        for name, result in results.items():
            for (times, origins), (ref_times, ref_origins) in zip(
                result[0], reference_result[0]
            ):
                assert np.array_equal(times, ref_times, equal_nan=True), name
                assert np.array_equal(origins, ref_origins), name
            assert result[1:] == reference_result[1:], name


class TestResolveBitIdentity:
    @pytest.mark.parametrize("seed", range(3))
    def test_native_resolvers_match_the_reference(self, seed):
        natives = [
            get_kernel(name)
            for name in available_kernels()
            if get_kernel(name).resolve_windows is not None
        ]
        if not natives:
            pytest.skip("no native resolver kernel in this environment")
        rng = np.random.default_rng(seed)
        inputs = _resolve_inputs(rng)
        args = (
            inputs["primary"], inputs["secondary"],
            inputs["dark_rel"], inputs["dark_bounds"],
            inputs["background_rel"], inputs["background_bounds"],
            inputs["trap_filled"], inputs["trap_release"],
            DEAD_TIME, GATE_RECOVERY, DURATION, 0.0,
        )
        ref_times, ref_origins = reference.resolve_windows(*args)
        for kernel in natives:
            times, origins = kernel.resolve_windows(*args)
            assert np.array_equal(times, ref_times, equal_nan=True), kernel.name
            assert np.array_equal(origins, ref_origins), kernel.name

    def test_empty_secondary_stack(self):
        natives = [
            get_kernel(name)
            for name in available_kernels()
            if get_kernel(name).resolve_windows is not None
        ]
        if not natives:
            pytest.skip("no native resolver kernel in this environment")
        rng = np.random.default_rng(11)
        inputs = _resolve_inputs(rng, windows=32, channels=3, secondaries=1)
        empty = np.empty((0,) + inputs["primary"].shape)
        args = (
            inputs["primary"], empty,
            inputs["dark_rel"], inputs["dark_bounds"],
            inputs["background_rel"], inputs["background_bounds"],
            inputs["trap_filled"], inputs["trap_release"],
            DEAD_TIME, GATE_RECOVERY, DURATION, 0.0,
        )
        ref_times, ref_origins = reference.resolve_windows(*args)
        for kernel in natives:
            times, origins = kernel.resolve_windows(*args)
            assert np.array_equal(times, ref_times, equal_nan=True), kernel.name
            assert np.array_equal(origins, ref_origins), kernel.name


def _loaded_arbiter(rng, nodes, requests, horizon):
    """An arbiter with randomised per-node arrival-ordered request queues."""
    arbiter = RoundRobinArbiter(nodes)
    for item in range(requests):
        node = int(rng.integers(0, nodes))
        queue = arbiter._pending[node]
        floor = queue[-1][0] if queue else 0
        arrival = int(min(floor + rng.integers(0, 4), horizon + 4))
        arbiter.request(node, item, arrival=arrival)
    return arbiter


def _scalar_schedule(arbiter, costs, horizon, start_slot):
    """The per-slot grant loop the vectorised schedule must reproduce."""
    items, starts = [], []
    slot = start_slot
    while slot < horizon:
        granted = arbiter.grant(slot)
        if granted is None:
            next_arrival = arbiter.next_arrival()
            if next_arrival is None or next_arrival >= horizon:
                break
            slot = max(slot + 1, next_arrival)
            continue
        _node, item = granted
        items.append(item)
        starts.append(slot)
        slot += int(costs[item])
    return items, starts


class TestArbitrationSchedule:
    @pytest.mark.parametrize("seed", range(5))
    def test_schedule_matches_the_scalar_grant_loop(self, seed):
        rng = np.random.default_rng(seed)
        nodes = int(rng.integers(1, 9))
        horizon = 600
        scalar = _loaded_arbiter(rng, nodes, requests=200, horizon=horizon)
        vector = RoundRobinArbiter(nodes)
        for node in range(nodes):
            for arrival, item in scalar._pending[node]:
                vector.request(node, item, arrival=arrival)
        costs = rng.integers(1, 5, 200)

        arrivals, items, bounds = vector.snapshot()
        slot_costs = np.asarray([costs[item] for item in items], dtype=np.int64)
        granted, starts, _final_slot, final_rotation = round_robin_schedule(
            arrivals, slot_costs, bounds,
            start_node=vector.next_node, start_slot=0, horizon=horizon,
        )
        scheduled_items = [items[index] for index in granted]

        scalar_items, scalar_starts = _scalar_schedule(scalar, costs, horizon, 0)
        assert scheduled_items == scalar_items
        assert list(starts) == scalar_starts

        # Committing the schedule leaves the arbiter in the scalar end state.
        granted_nodes = np.searchsorted(bounds, granted, side="right") - 1
        vector.commit_grants(
            np.bincount(granted_nodes, minlength=nodes), final_rotation
        )
        assert vector.next_node == scalar.next_node
        assert vector.grants_issued == scalar.grants_issued
        assert vector.pending_count() == scalar.pending_count()
        for node in range(nodes):
            assert list(vector._pending[node]) == list(scalar._pending[node])

    def test_empty_queue_schedules_nothing(self):
        arbiter = RoundRobinArbiter(4)
        arrivals, items, bounds = arbiter.snapshot()
        granted, starts, final_slot, final_rotation = round_robin_schedule(
            arrivals, np.zeros(0, dtype=np.int64), bounds,
            start_node=2, start_slot=5, horizon=50,
        )
        assert granted.size == 0 and starts.size == 0
        assert final_rotation == 2


def _equivalence_scenario(seed_policy="per-point", trial_mode="naive"):
    scenario = Scenario(
        name=f"kernel-equivalence-{seed_policy}-{trial_mode}",
        description="grid exercised by the kernel-equivalence tests",
        link_overrides={"ppm_bits": 4},
        sweep_axes={"mean_detected_photons": (5.0, 40.0)},
        metrics=("ber", "symbol_error_rate"),
        bits_per_point=256,
        seed_policy=seed_policy,
    )
    if trial_mode != "naive":
        scenario = scenario.with_trial_mode(trial_mode)
    return scenario


class TestScenarioEquivalence:
    """Whole-report bit-identity across kernels.

    ``REPRO_KERNEL`` drives the selection so the scenario mapping (and hence
    the report digest) is identical across runs — the only thing allowed to
    differ is which implementation executed the hot loops.
    """

    @pytest.mark.parametrize("seed_policy", ("per-point", "shared"))
    def test_grid_bit_identical_across_kernels(self, monkeypatch, seed_policy):
        scenario = _equivalence_scenario(seed_policy)
        monkeypatch.setenv("REPRO_KERNEL", "python")
        expected = ExperimentRunner(scenario, seed=11).run().to_mapping()
        for name in available_kernels():
            monkeypatch.setenv("REPRO_KERNEL", name)
            report = ExperimentRunner(scenario, seed=11).run().to_mapping()
            assert report == expected, name

    def test_importance_mode_bit_identical_across_kernels(self, monkeypatch):
        # Importance-sampled chunks run the dedicated python path whatever
        # kernel is selected — selection must still be a no-op on results.
        scenario = _equivalence_scenario(trial_mode="importance")
        monkeypatch.setenv("REPRO_KERNEL", "python")
        expected = ExperimentRunner(scenario, seed=5).run().to_mapping()
        for name in available_kernels():
            monkeypatch.setenv("REPRO_KERNEL", name)
            report = ExperimentRunner(scenario, seed=5).run().to_mapping()
            assert report == expected, name

    def test_explicit_scenario_kernel_matches_the_default(self):
        # The kernel= field threads end-to-end (scenario -> trial -> link ->
        # device); only the scenario mapping may differ from a default run.
        scenario = _equivalence_scenario()
        expected = ExperimentRunner(scenario, seed=3).run().to_mapping()
        for name in available_kernels():
            pinned = ExperimentRunner(
                scenario.with_kernel(name), seed=3
            ).run().to_mapping()
            assert pinned["scenario"].pop("kernel") == name
            assert pinned == expected, name

    @pytest.mark.scenario_smoke
    def test_every_named_scenario_bit_identical_across_kernels(self, monkeypatch):
        # The acceptance contract of the kernel layer: for every library
        # scenario — link sweeps, multichannel arrays, NoC buses — kernel
        # selection never changes a single bit of the report.
        for name in named_scenarios():
            scenario = get_scenario(name).with_budget(128)
            monkeypatch.setenv("REPRO_KERNEL", "python")
            expected = ExperimentRunner(scenario, seed=0).run().to_mapping()
            for kernel_name in available_kernels():
                monkeypatch.setenv("REPRO_KERNEL", kernel_name)
                report = ExperimentRunner(scenario, seed=0).run().to_mapping()
                assert report == expected, (name, kernel_name)


class TestScenarioKernelField:
    def test_kernel_validated_against_known_names(self):
        with pytest.raises(ValueError, match="kernel must be one of"):
            _equivalence_scenario().with_kernel("cuda")

    def test_kernel_requires_a_capable_backend(self):
        with pytest.raises(ValueError, match="support"):
            Scenario(
                name="scalar-kernel",
                backend="scalar",
                bits_per_point=64,
                kernel="vector",
            )

    def test_kernel_round_trips_through_the_mapping(self):
        scenario = _equivalence_scenario().with_kernel("vector")
        mapping = scenario.to_mapping()
        assert mapping["kernel"] == "vector"
        assert Scenario.from_mapping(mapping) == scenario
        # Unset kernel stays out of the mapping: committed digests are stable.
        assert "kernel" not in _equivalence_scenario().to_mapping()
