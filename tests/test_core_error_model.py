"""Tests for repro.core.error_model and ber."""

import pytest

from repro.analysis.units import NS, PS
from repro.core.ber import (
    BerEstimate,
    analytic_bit_error_rate,
    ber_vs_photons,
    monte_carlo_bit_error_rate,
)
from repro.core.config import LinkConfig
from repro.core.error_model import ErrorBudget, symbol_error_budget
from repro.spad.jitter import JitterModel


class TestErrorBudget:
    def test_union_bound_and_cap(self):
        budget = ErrorBudget(0.1, 0.1, 0.1, 0.1, 0.1)
        assert budget.symbol_error_probability == pytest.approx(0.5)
        capped = ErrorBudget(0.9, 0.9, 0.0, 0.0, 0.0)
        assert capped.symbol_error_probability == 1.0

    def test_bit_error_rate_scaling(self):
        budget = ErrorBudget(0.0, 0.0, 0.0, 0.1, 0.0)
        # Jitter errors flip ~1.5 bits of a 4-bit symbol.
        assert budget.bit_error_rate(4) == pytest.approx(0.1 * 1.5 / 4)
        erasures = ErrorBudget(0.1, 0.0, 0.0, 0.0, 0.0)
        assert erasures.bit_error_rate(4) == pytest.approx(0.1 * 2 / 4)

    def test_dominant_mechanism(self):
        budget = ErrorBudget(0.001, 0.5, 0.0, 0.01, 0.0)
        assert budget.dominant_mechanism() == "dark_count_preemption"

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            ErrorBudget(1.5, 0.0, 0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            ErrorBudget(0.0, 0.0, 0.0, 0.0, 0.0).bit_error_rate(0)


class TestSymbolErrorBudget:
    def test_missed_detection_dominates_at_low_photons(self):
        budget = symbol_error_budget(LinkConfig(mean_detected_photons=0.5))
        assert budget.dominant_mechanism() == "missed_detection"
        assert budget.missed_detection > 0.5

    def test_bright_pulses_eliminate_misses(self):
        budget = symbol_error_budget(LinkConfig(mean_detected_photons=200.0))
        assert budget.missed_detection < 1e-6

    def test_narrow_slots_increase_jitter_errors(self):
        narrow = symbol_error_budget(LinkConfig(slot_duration=150 * PS))
        wide = symbol_error_budget(LinkConfig(slot_duration=2 * NS))
        assert narrow.jitter_misslot > wide.jitter_misslot

    def test_hot_operation_increases_dark_preemption(self):
        cold = symbol_error_budget(LinkConfig(temperature=0.0))
        hot = symbol_error_budget(LinkConfig(temperature=80.0))
        assert hot.dark_count_preemption > cold.dark_count_preemption

    def test_short_guard_increases_afterpulse_leakage(self):
        """The paper's range-vs-error trade-off: shrinking the range (relative to
        the dead time) raises the afterpulse error contribution."""
        long_guard = symbol_error_budget(LinkConfig(ppm_bits=4, slot_duration=500 * PS,
                                                    spad_dead_time=32 * NS))
        short_guard = symbol_error_budget(LinkConfig(ppm_bits=4, slot_duration=500 * PS,
                                                     spad_dead_time=32 * NS, extra_guard=0.0)
                                          .with_dead_time(32 * NS))
        # Compare against an explicitly longer guard instead.
        longer = symbol_error_budget(LinkConfig(ppm_bits=4, slot_duration=500 * PS,
                                                spad_dead_time=32 * NS, extra_guard=64 * NS))
        assert longer.afterpulse_preemption < long_guard.afterpulse_preemption or \
            long_guard.afterpulse_preemption == 0.0

    def test_custom_jitter_model_respected(self):
        config = LinkConfig(slot_duration=500 * PS)
        noisy = symbol_error_budget(config, jitter=JitterModel(sigma=400 * PS, tail_fraction=0.0))
        quiet = symbol_error_budget(config, jitter=JitterModel(sigma=10 * PS, tail_fraction=0.0))
        assert noisy.jitter_misslot > quiet.jitter_misslot


class TestBerEstimators:
    def test_analytic_matches_monte_carlo_within_factor(self):
        config = LinkConfig(ppm_bits=4, mean_detected_photons=50.0)
        analytic = analytic_bit_error_rate(config)
        estimate = monte_carlo_bit_error_rate(config, bits=8000, seed=1)
        assert estimate.ber == pytest.approx(analytic, rel=1.0, abs=5e-3)

    def test_monte_carlo_estimate_fields(self):
        estimate = monte_carlo_bit_error_rate(LinkConfig(ppm_bits=4), bits=1000, seed=2)
        assert estimate.bits_simulated >= 1000
        assert 0 <= estimate.ber <= 1
        assert estimate.confidence_95 > 0

    def test_zero_errors_confidence_rule_of_three(self):
        estimate = BerEstimate(bit_errors=0, bits_simulated=3000)
        assert estimate.confidence_95 == pytest.approx(0.001)

    def test_ber_vs_photons_waterfall(self):
        config = LinkConfig(ppm_bits=4)
        points = ber_vs_photons(config, photon_levels=[0.5, 50.0], bits_per_point=2000, seed=0)
        assert points[0][1].ber > points[1][1].ber

    def test_validation(self):
        with pytest.raises(ValueError):
            monte_carlo_bit_error_rate(LinkConfig(), bits=0)
        with pytest.raises(ValueError):
            BerEstimate(bit_errors=5, bits_simulated=0)
        with pytest.raises(ValueError):
            BerEstimate(bit_errors=10, bits_simulated=5)
