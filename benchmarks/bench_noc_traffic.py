"""NOC TRAFFIC — epoch-batched optical bus vs. the scalar slot-by-slot loop.

Times the refactored NoC layer on the workload the experiment layer actually
executes for ``noc-*`` scenarios: :class:`repro.simulation.montecarlo.
NocTrafficTrial` chunks of uniform-traffic packets drained through the slotted
:class:`~repro.noc.bus.OpticalBus`.  The batched path accumulates an epoch of
arbiter grants and flushes each ``(source, destination)`` group as one
vectorised transmission on a ``"batch"`` link (broadcast would be one
``(S, C)`` multichannel pass); the baseline is the same arbitration driving
the scalar engine one packet at a time — the pre-refactor slot loop.

Both paths are constructed through :func:`repro.core.backend.make_link` and
are statistically equivalent by the backend contract (locked by
``tests/test_noc_batching.py``); arbitration is shared, so slot assignments
and latencies are *identical* and only the transmission engine differs.

Writes the measurements to ``BENCH_noc.json`` at the repository root (the
``BENCH_fastpath.json`` pattern).  The acceptance bar is a >=5x slots/sec
speedup on a >=64-packet uniform-traffic workload.
"""

import json
import time
from pathlib import Path

from repro.analysis.report import ReportTable, TextReport
from repro.analysis.units import NS, format_si
from repro.core.config import LinkConfig
from repro.simulation.montecarlo import MonteCarloRunner, NocTrafficTrial

PACKETS = 128  # >=64-packet acceptance workload
PACKET_BITS = 64
OFFERED_LOAD = 0.8
STACK_DIES = 4
CONFIG = LinkConfig(
    ppm_bits=4,
    slot_duration=2 * NS,
    extra_guard=32 * NS,
    wavelength=1050e-9,
    mean_detected_photons=20_000.0,
)
RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_noc.json"


def run_traffic(backend: str):
    """Drain the uniform-traffic workload on one backend; returns (stats, seconds)."""
    captured = {}

    def capture(bus) -> None:
        captured["stats"] = bus.statistics

    trial = NocTrafficTrial(
        config=CONFIG,
        backend=backend,
        stack_dies=STACK_DIES,
        traffic="uniform",
        offered_load=OFFERED_LOAD,
        packet_bits=PACKET_BITS,
        on_result=capture,
    )
    start = time.perf_counter()
    # One chunk = one bus run: the whole workload is a single epoch-batched
    # (or scalar) drain, the shape ExperimentRunner compiles noc points into.
    MonteCarloRunner(seed=11, label="bench-noc").run_batch(
        trial, trials=PACKETS, chunk_size=PACKETS
    )
    return captured["stats"], time.perf_counter() - start


def run_comparison():
    batched_stats, batched_elapsed = run_traffic("batch")
    scalar_stats, scalar_elapsed = run_traffic("scalar")
    return batched_stats, batched_elapsed, scalar_stats, scalar_elapsed


def test_noc_traffic_speedup(benchmark):
    batched_stats, batched_elapsed, scalar_stats, scalar_elapsed = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1, warmup_rounds=1
    )

    # Arbitration is shared, so both paths serialise the same busy slots.
    assert batched_stats.busy_slots == scalar_stats.busy_slots
    slots = batched_stats.busy_slots
    batched_rate = slots / batched_elapsed
    scalar_rate = slots / scalar_elapsed
    speedup = batched_rate / scalar_rate

    record = {
        "workload": {
            "packets": PACKETS,
            "packet_bits": PACKET_BITS,
            "traffic": "uniform",
            "offered_load": OFFERED_LOAD,
            "stack_dies": STACK_DIES,
            "busy_slots": slots,
            "ppm_bits": CONFIG.ppm_bits,
            "slot_duration_s": CONFIG.slot_duration,
            "emitted_photons": CONFIG.mean_detected_photons,
        },
        "scalar_slot_loop": {
            "seconds": scalar_elapsed,
            "slots_per_sec": scalar_rate,
            "delivery_ratio": scalar_stats.delivery_ratio,
            "bit_error_rate": scalar_stats.bit_error_rate,
        },
        "batched_bus": {
            "seconds": batched_elapsed,
            "slots_per_sec": batched_rate,
            "delivery_ratio": batched_stats.delivery_ratio,
            "bit_error_rate": batched_stats.bit_error_rate,
        },
        "speedup": speedup,
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")

    report = TextReport(
        "NOC TRAFFIC",
        "epoch-batched optical bus vs. the scalar slot-by-slot loop",
        paper_claim="an entirely optical through-chip bus that could service "
                    "hundreds of thinned stacked dies (broadcast by construction)",
    )
    table = ReportTable(columns=["path", "wall time", "slots/sec", "delivery", "BER"])
    table.add_row(
        "scalar slot loop", f"{scalar_elapsed:.3f} s", format_si(scalar_rate, "slot/s"),
        f"{scalar_stats.delivery_ratio:.3f}", f"{scalar_stats.bit_error_rate:.2e}",
    )
    table.add_row(
        "epoch-batched bus", f"{batched_elapsed:.3f} s", format_si(batched_rate, "slot/s"),
        f"{batched_stats.delivery_ratio:.3f}", f"{batched_stats.bit_error_rate:.2e}",
    )
    report.add_table(
        table,
        caption=f"{PACKETS} uniform-traffic packets x {PACKET_BITS} payload bits "
                f"over a {STACK_DIES}-die stack at {OFFERED_LOAD} offered load",
    )
    report.add_comparison("bus batching speedup", ">=5x slots/sec", f"{speedup:.1f}x")
    print()
    print(report.render())
    print(f"perf record written to {RECORD_PATH}")

    assert speedup >= 5.0
    # Same physics on both paths: delivery must agree within Monte-Carlo
    # noise (binomial bound on PACKETS packets, generous 5-sigma-ish).
    tolerance = 5.0 * (0.25 / PACKETS) ** 0.5
    assert abs(batched_stats.delivery_ratio - scalar_stats.delivery_ratio) < tolerance


if __name__ == "__main__":
    run_comparison()  # warm-up (imports, allocator, caches)
    batched_stats, batched_elapsed, scalar_stats, scalar_elapsed = run_comparison()
    print(
        f"batched: {batched_stats.busy_slots / batched_elapsed:,.0f} slots/s  "
        f"scalar: {scalar_stats.busy_slots / scalar_elapsed:,.0f} slots/s  "
        f"speedup {scalar_elapsed / batched_elapsed:.1f}x"
    )
