"""Tests for repro.core.throughput — the paper's Section 3 equations."""

import math

import pytest

from repro.analysis.units import NS, PS
from repro.core.throughput import (
    TdcDesign,
    bits_per_symbol,
    detection_cycle,
    measurement_window,
    throughput,
)


class TestEquations:
    def test_measurement_window_formula(self):
        """MW(N, C) = (2^C + 1) * N * delta."""
        assert measurement_window(96, 4, 54 * PS) == pytest.approx((16 + 1) * 96 * 54e-12)
        assert measurement_window(16, 0, 50 * PS) == pytest.approx(2 * 16 * 50e-12)

    def test_detection_cycle_formula(self):
        """DC(N, C) = 2^C * N * delta."""
        assert detection_cycle(96, 4, 54 * PS) == pytest.approx(16 * 96 * 54e-12)

    def test_throughput_formula(self):
        """TP(N, C) = (log2(N) + C) / MW(N, C)."""
        expected = (math.log2(64) + 2) / ((4 + 1) * 64 * 50e-12)
        assert throughput(64, 2, 50 * PS) == pytest.approx(expected)

    def test_bits_per_symbol(self):
        assert bits_per_symbol(64, 2) == pytest.approx(8.0)
        assert bits_per_symbol(96, 4) == pytest.approx(math.log2(96) + 4)

    def test_reset_window_is_one_fine_range(self):
        """MW - DC = N * delta (one extra fine range for TDC reset)."""
        n, c, d = 128, 3, 40 * PS
        assert measurement_window(n, c, d) - detection_cycle(n, c, d) == pytest.approx(n * d)

    def test_validation(self):
        with pytest.raises(ValueError):
            measurement_window(1, 0, 50 * PS)
        with pytest.raises(ValueError):
            measurement_window(16, -1, 50 * PS)
        with pytest.raises(ValueError):
            measurement_window(16, 0, 0.0)
        with pytest.raises(ValueError):
            bits_per_symbol(1, 0)


class TestTradeoffShape:
    """The qualitative structure Figure 4 visualises."""

    def test_throughput_decreases_with_coarse_bits(self):
        values = [throughput(64, c, 54 * PS) for c in range(7)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_detection_cycle_increases_with_coarse_bits(self):
        values = [detection_cycle(64, c, 54 * PS) for c in range(7)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_throughput_decreases_with_fine_elements(self):
        values = [throughput(n, 2, 54 * PS) for n in (8, 16, 32, 64, 128, 256)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_gbps_reachable_at_small_ranges(self):
        """The abstract's 'several gigabits per second' lives at small N·2^C."""
        assert throughput(8, 0, 54 * PS) > 3e9
        assert throughput(16, 0, 54 * PS) > 2e9

    def test_long_dead_time_designs_are_sub_gbps(self):
        """Matching a 32 ns detection cycle costs two orders of magnitude."""
        design = TdcDesign(fine_elements=96, coarse_bits=6, element_delay=54 * PS)
        assert design.detection_cycle > 300 * NS
        assert design.throughput < 1e9


class TestTdcDesign:
    def test_default_matches_fpga_prototype(self):
        design = TdcDesign()
        assert design.fine_elements == 96
        assert design.fine_range == pytest.approx(96 * 54e-12)

    def test_properties_agree_with_functions(self):
        design = TdcDesign(fine_elements=128, coarse_bits=3, element_delay=40 * PS)
        assert design.throughput == pytest.approx(throughput(128, 3, 40 * PS))
        assert design.measurement_window == pytest.approx(measurement_window(128, 3, 40 * PS))
        assert design.detection_cycle == pytest.approx(detection_cycle(128, 3, 40 * PS))
        assert design.code_count == 8 * 128
        assert design.whole_bits_per_symbol == 10
        assert design.resolution == pytest.approx(40 * PS)

    def test_matches_dead_time(self):
        design = TdcDesign(fine_elements=64, coarse_bits=3, element_delay=62.5 * PS)
        assert design.detection_cycle == pytest.approx(32 * NS)
        assert design.matches_dead_time(32 * NS)
        assert not design.matches_dead_time(100 * NS)
        with pytest.raises(ValueError):
            design.matches_dead_time(0.0)

    def test_with_helpers(self):
        design = TdcDesign()
        assert design.with_coarse_bits(2).coarse_bits == 2
        assert design.with_fine_elements(32).fine_elements == 32
        assert design.scaled_delay(0.5).element_delay == pytest.approx(27 * PS)
        with pytest.raises(ValueError):
            design.scaled_delay(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TdcDesign(fine_elements=1)
        with pytest.raises(ValueError):
            TdcDesign(element_delay=-1.0)
