"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.units import PS
from repro.core.throughput import (
    bits_per_symbol,
    detection_cycle,
    measurement_window,
    throughput,
)
from repro.modulation.error_correction import HammingSecDed
from repro.modulation.ppm import PpmCodec
from repro.modulation.scrambler import MultiplicativeScrambler
from repro.modulation.symbols import SlotGrid, bits_to_int, int_to_bits
from repro.simulation.events import EventQueue
from repro.tdc.coarse_counter import CoarseCounter
from repro.tdc.nonlinearity import compute_dnl_inl
from repro.tdc.thermometer import binary_to_thermometer, majority_filter, thermometer_to_binary


# --------------------------------------------------------------------------- bits
@given(value=st.integers(min_value=0, max_value=2 ** 16 - 1), width=st.integers(16, 24))
def test_bit_roundtrip(value, width):
    assert bits_to_int(int_to_bits(value, width)) == value


@given(bits=st.lists(st.integers(0, 1), min_size=1, max_size=32))
def test_bits_to_int_bounded(bits):
    assert 0 <= bits_to_int(bits) < 2 ** len(bits)


# --------------------------------------------------------------------- thermometer
@given(value=st.integers(0, 64), length=st.just(64))
def test_thermometer_roundtrip(value, length):
    assert thermometer_to_binary(binary_to_thermometer(value, length)) == value


@given(value=st.integers(0, 32))
def test_majority_filter_idempotent_on_clean_codes(value):
    code = binary_to_thermometer(value, 32)
    assert np.array_equal(majority_filter(code), code)


# ----------------------------------------------------------------------------- PPM
@given(bits=st.lists(st.integers(0, 1), min_size=4, max_size=40).filter(lambda b: len(b) % 4 == 0))
def test_ppm_encode_decode_roundtrip(bits):
    codec = PpmCodec(SlotGrid(bits_per_symbol=4, slot_duration=1e-9, guard_time=8e-9))
    symbols = codec.encode_bits(bits)
    decoded = codec.decode_stream([symbol.pulse_time for symbol in symbols])
    assert decoded == list(bits)


@given(value=st.integers(0, 255))
def test_ppm_pulse_time_within_data_window(value):
    grid = SlotGrid(bits_per_symbol=8, slot_duration=0.5e-9, guard_time=4e-9)
    codec = PpmCodec(grid)
    symbol = codec.encode_value(value)
    assert 0 <= symbol.pulse_time < grid.data_window


# ----------------------------------------------------------------- scrambler / FEC
@given(bits=st.lists(st.integers(0, 1), min_size=1, max_size=200), state=st.integers(0, 127))
def test_scrambler_roundtrip(bits, state):
    scrambler = MultiplicativeScrambler()
    assert scrambler.descramble(scrambler.scramble(bits, state), state) == bits


@given(
    data=st.lists(st.integers(0, 1), min_size=8, max_size=8),
    error_position=st.integers(0, 12),
)
def test_hamming_corrects_any_single_error(data, error_position):
    code = HammingSecDed()
    codeword = code.encode_block(data)
    codeword[error_position] ^= 1
    assert code.decode_block(codeword).data_bits == data


# ------------------------------------------------------------------ paper equations
@given(
    n=st.sampled_from([4, 8, 16, 32, 64, 96, 128, 256]),
    c=st.integers(0, 8),
    delta=st.floats(min_value=10e-12, max_value=200e-12),
)
def test_throughput_equation_invariants(n, c, delta):
    mw = measurement_window(n, c, delta)
    dc = detection_cycle(n, c, delta)
    tp = throughput(n, c, delta)
    # MW always exceeds DC by exactly one fine range.
    assert mw - dc == pytest.approx(n * delta)
    # Throughput times the window recovers the bits per symbol.
    assert tp * mw == pytest.approx(bits_per_symbol(n, c))
    # All quantities are positive.
    assert mw > 0 and dc > 0 and tp > 0


@given(
    n=st.sampled_from([8, 16, 32, 64]),
    c=st.integers(0, 6),
    delta=st.floats(min_value=20e-12, max_value=100e-12),
)
def test_throughput_decreases_when_range_extended(n, c, delta):
    assert throughput(n, c + 1, delta) <= throughput(n, c, delta) + 1e-9


# -------------------------------------------------------------------- coarse counter
@given(
    arrival=st.floats(min_value=0.0, max_value=75e-9),
    bits=st.integers(1, 5),
)
def test_coarse_split_reconstruct_roundtrip(arrival, bits):
    counter = CoarseCounter(clock_frequency=200e6, bits=bits)
    if arrival >= counter.full_range:
        return
    # Arrivals within float noise of a clock edge are legitimately ambiguous
    # (they may be attributed to either adjacent period); skip that measure-zero set.
    phase = arrival % counter.period
    if min(phase, counter.period - phase) < 1e-12:
        return
    code, residual = counter.split(arrival)
    assert 0 <= code < counter.modulus
    assert 0 < residual <= counter.period
    assert counter.reconstruct(code, residual) == pytest.approx(arrival, abs=1e-15)


# ----------------------------------------------------------------------- DNL / INL
@given(counts=st.lists(st.integers(0, 1000), min_size=2, max_size=200).filter(lambda c: sum(c) > 0))
def test_dnl_properties(counts):
    dnl, inl = compute_dnl_inl(counts)
    # DNL averages to zero by construction and is bounded below by -1.
    assert np.mean(dnl) == pytest.approx(0.0, abs=1e-9)
    assert np.all(dnl >= -1.0)
    # INL is the cumulative sum of DNL.
    assert inl[-1] == pytest.approx(np.sum(dnl))


# ----------------------------------------------------------------------- event queue
@given(times=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=50))
def test_event_queue_pops_sorted(times):
    queue = EventQueue()
    for t in times:
        queue.push(t)
    popped = [queue.pop().time for _ in range(len(times))]
    assert popped == sorted(popped)
