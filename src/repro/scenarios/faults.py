"""Fault tolerance for the execution fabric: retries, failures, chaos.

Grid-point evaluation is a *pure function* of its :class:`PointTask` — the
point seed is derived in the parent before any point runs, and
``evaluate_point`` touches no mutable state — so re-executing a task after a
crash, hang or lost result is always safe: the retried attempt produces a
**bit-identical** outcome.  This module packages that observation into the
three pieces the executors build on:

* :class:`RetryPolicy` — how many attempts a point gets, the per-task
  timeout, and an exponential backoff whose jitter is *deterministic*
  (derived from the task seed via
  :func:`~repro.simulation.randomness.split_seed`), so retry schedules are
  reproducible run to run.
* :class:`PointFailure` — the structured record a point leaves in the report
  when every attempt is exhausted under the ``"continue"`` failure policy
  (exception type, message, attempts, elapsed wall time), instead of
  aborting the whole run.
* :class:`ChaosSchedule` / :class:`ChaosExecutor` — deterministic fault
  injection: crashes, delays and corrupted results are injected from a
  seeded schedule keyed on ``(task seed, attempt)``, either by wrapping any
  executor in :class:`ChaosExecutor` or by exporting the schedule through
  the ``REPRO_CHAOS`` environment variable (which worker subprocesses
  inherit).  Attempts past ``max_faulty_attempts`` are never faulted, so a
  retry budget larger than that bound is *guaranteed* to converge — the
  chaos test suite proves every recovery path yields reports bit-identical
  to a fault-free serial run.

>>> policy = RetryPolicy(max_attempts=3, backoff=0.5)
>>> policy.delay(seed=7, attempt=1) == policy.delay(seed=7, attempt=1)
True
>>> schedule = ChaosSchedule(seed=1, crash_rate=0.5, max_faulty_attempts=2)
>>> schedule.fault_for(task_seed=42, attempt=3) is None  # past the bound
True
>>> schedule.fault_for(task_seed=42, attempt=1) == schedule.fault_for(42, 1)
True
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Optional, Sequence, Tuple

from repro.simulation.randomness import split_seed

#: Environment variable carrying a JSON :meth:`ChaosSchedule.to_mapping` —
#: the subprocess hook: worker processes (and ``python -m repro`` runs under
#: test) read it at every attempt, so faults inject identically whether the
#: evaluation happens in-process or across a process boundary.
CHAOS_ENV = "REPRO_CHAOS"

#: Valid failure policies: ``"fail_fast"`` aborts the run on the first
#: exhausted point; ``"continue"`` records a :class:`PointFailure` in the
#: report and keeps going (metrics skip the failed point).
FAILURE_POLICIES: Tuple[str, ...] = ("fail_fast", "continue")


def validate_failure_policy(policy: str) -> str:
    if policy not in FAILURE_POLICIES:
        raise ValueError(
            f"failure_policy must be one of {FAILURE_POLICIES}, got {policy!r}"
        )
    return policy


class PointTimeoutError(RuntimeError):
    """A point evaluation exceeded its :attr:`RetryPolicy.timeout`."""


class WorkerLostError(RuntimeError):
    """A worker died (or vanished) while its task was in flight.

    The distributed analogue of ``BrokenProcessPool``: the
    :class:`~repro.cluster.executor.ClusterExecutor` raises it against the
    in-flight chunk of a worker whose connection dropped or whose heartbeats
    stopped, charging that chunk one attempt before requeueing it on a
    surviving worker — the same semantics the process pool applies to a dead
    pool member.
    """


class InjectedWorkerCrash(RuntimeError):
    """A :class:`ChaosSchedule` crash fault, raised on the in-process path.

    In a worker *process* the same fault calls ``os._exit`` instead, so the
    parent sees a broken pool — the real failure mode being rehearsed.
    """


class InjectedCorruption(RuntimeError):
    """A :class:`ChaosSchedule` corrupt-result fault (a poisoned pickle)."""


@dataclass(frozen=True)
class RetryPolicy:
    """How the executors treat a failing or hung point evaluation.

    Attributes
    ----------
    max_attempts:
        Total attempts a point gets (1 = no retry).
    timeout:
        Per-attempt wall-clock budget in seconds, or ``None`` for no limit.
        :class:`~repro.scenarios.executors.ProcessExecutor` *enforces* it —
        a worker still running past the deadline is killed and its task
        requeued; :class:`~repro.scenarios.executors.SerialExecutor` cannot
        pre-empt the evaluation, so it applies the budget after the fact
        (an overlong attempt is discarded and retried).
    backoff:
        Base delay in seconds before retry ``n`` (0 = retry immediately).
        The delay grows as ``backoff * backoff_factor**(attempt-1)``, capped
        at ``max_backoff``.
    backoff_factor:
        Exponential growth factor (>= 1).
    max_backoff:
        Upper bound on any single delay, in seconds.

    The jitter applied on top of the exponential curve is **deterministic**:
    it is derived from ``split_seed(task_seed, f"retry:{attempt}")``, so two
    runs of the same experiment back off identically — reproducibility
    extends to the retry schedule itself.
    """

    max_attempts: int = 3
    timeout: Optional[float] = None
    backoff: float = 0.0
    backoff_factor: float = 2.0
    max_backoff: float = 30.0

    def __post_init__(self) -> None:
        if not isinstance(self.max_attempts, int) or self.max_attempts < 1:
            raise ValueError(f"max_attempts must be a positive int, got {self.max_attempts!r}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive (or None), got {self.timeout!r}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be non-negative, got {self.backoff!r}")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor!r}")
        if self.max_backoff < 0:
            raise ValueError(f"max_backoff must be non-negative, got {self.max_backoff!r}")

    def delay(self, seed: int, attempt: int) -> float:
        """Seconds to wait before re-dispatching ``attempt + 1``.

        Exponential in the attempt number, with a deterministic jitter in
        ``[0.5, 1.0)`` of the base value derived from the task seed — no
        wall-clock or global RNG state is consulted.
        """
        if self.backoff <= 0:
            return 0.0
        base = min(self.backoff * self.backoff_factor ** (attempt - 1), self.max_backoff)
        fraction = split_seed(seed, f"retry:{attempt}") % 1_000_000 / 1_000_000.0
        return base * (0.5 + 0.5 * fraction)


@dataclass(frozen=True)
class PointFailure:
    """One grid point that exhausted every attempt (``"continue"`` policy).

    Carries enough structure to diagnose the failure without a debugger —
    the point's swept parameters, the final exception type and message, how
    many attempts were made and the elapsed wall time — and serialises into
    the report artefact next to the successful points.
    """

    index: int
    parameters: Mapping[str, Any]
    error_type: str
    message: str
    attempts: int
    elapsed: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "parameters", dict(self.parameters))

    def to_mapping(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "parameters": dict(self.parameters),
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "elapsed": self.elapsed,
        }

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "PointFailure":
        data = dict(mapping)
        known = {"index", "parameters", "error_type", "message", "attempts", "elapsed"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown point-failure key(s): {', '.join(unknown)}")
        missing = sorted(known - set(data))
        if missing:
            raise ValueError(f"point-failure mapping lacks key(s): {', '.join(missing)}")
        return cls(**data)


#: Fault kinds a :class:`ChaosSchedule` injects.
FAULT_KINDS: Tuple[str, ...] = ("crash", "delay", "corrupt")


@dataclass(frozen=True)
class ChaosSchedule:
    """A seeded, deterministic schedule of injected faults.

    For every ``(task seed, attempt)`` pair the schedule decides — by
    hashing, never by sampling shared RNG state — whether that attempt
    crashes the worker, sleeps past the retry timeout, or returns a
    corrupted result.  The decision is a pure function of the schedule, so
    a chaos run is exactly reproducible, and because attempts beyond
    ``max_faulty_attempts`` are never faulted, any retry budget larger than
    that bound converges to the fault-free result.
    """

    seed: int = 0
    crash_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 0.25
    corrupt_rate: float = 0.0
    max_faulty_attempts: int = 2

    def __post_init__(self) -> None:
        for name in ("crash_rate", "delay_rate", "corrupt_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value!r}")
        total = self.crash_rate + self.delay_rate + self.corrupt_rate
        if total > 1.0:
            raise ValueError(f"fault rates must sum to <= 1, got {total}")
        if self.delay_seconds < 0:
            raise ValueError(f"delay_seconds must be non-negative, got {self.delay_seconds!r}")
        if self.max_faulty_attempts < 0:
            raise ValueError(
                f"max_faulty_attempts must be non-negative, got {self.max_faulty_attempts!r}"
            )

    def fault_for(self, task_seed: int, attempt: int) -> Optional[str]:
        """The fault injected into this ``(task, attempt)``, or ``None``.

        Deterministic: the same pair always yields the same decision, and
        attempts past ``max_faulty_attempts`` are always clean.
        """
        if attempt > self.max_faulty_attempts:
            return None
        draw = split_seed(self.seed, f"chaos:{task_seed}:{attempt}") % 1_000_000 / 1_000_000.0
        if draw < self.crash_rate:
            return "crash"
        if draw < self.crash_rate + self.delay_rate:
            return "delay"
        if draw < self.crash_rate + self.delay_rate + self.corrupt_rate:
            return "corrupt"
        return None

    # -- serialisation (for the REPRO_CHAOS environment hook) -------------------
    def to_mapping(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "crash_rate": self.crash_rate,
            "delay_rate": self.delay_rate,
            "delay_seconds": self.delay_seconds,
            "corrupt_rate": self.corrupt_rate,
            "max_faulty_attempts": self.max_faulty_attempts,
        }

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "ChaosSchedule":
        data = dict(mapping)
        known = {f.name for f in __import__("dataclasses").fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown chaos-schedule key(s): {', '.join(unknown)}")
        return cls(**data)


def active_chaos() -> Optional[ChaosSchedule]:
    """The schedule exported through ``REPRO_CHAOS``, or ``None``.

    Read at every attempt, in the parent and in worker processes alike (a
    worker inherits the environment of the parent that created its pool),
    so one hook covers both executors and subprocess CLI tests.
    """
    raw = os.environ.get(CHAOS_ENV)
    if not raw:
        return None
    try:
        mapping = json.loads(raw)
    except json.JSONDecodeError as error:
        raise ValueError(f"{CHAOS_ENV} is not valid JSON: {error}") from error
    if not isinstance(mapping, dict):
        raise ValueError(f"{CHAOS_ENV} must hold a JSON object")
    return ChaosSchedule.from_mapping(mapping)


def inject_fault(schedule: ChaosSchedule, task_seed: int, attempt: int) -> None:
    """Apply the schedule's fault for this attempt, if any.

    ``crash`` raises :class:`InjectedWorkerCrash` in the parent process but
    calls ``os._exit`` inside a worker process — the pool sees a genuinely
    dead worker, exactly like a segfault or OOM kill.  ``delay`` sleeps
    (tripping per-task timeouts); ``corrupt`` raises
    :class:`InjectedCorruption` (a poisoned result crossing the boundary).
    """
    fault = schedule.fault_for(task_seed, attempt)
    if fault is None:
        return
    if fault == "crash":
        if multiprocessing.parent_process() is not None:
            os._exit(113)  # hard death inside a pool worker: no traceback, no result
        raise InjectedWorkerCrash(
            f"chaos: injected worker crash (task seed {task_seed}, attempt {attempt})"
        )
    if fault == "delay":
        time.sleep(schedule.delay_seconds)
        return
    raise InjectedCorruption(
        f"chaos: injected corrupted result (task seed {task_seed}, attempt {attempt})"
    )


class ChaosExecutor:
    """Wrap any executor so its point evaluations run under a fault schedule.

    The schedule is exported through :data:`CHAOS_ENV` for the duration of
    the stream, which is what makes one wrapper serve both executors: the
    serial path reads it in-process at each attempt, and a process pool's
    workers inherit it when the pool is created (which happens while the
    stream — and hence the environment override — is live).

    ``retry`` and ``failure_policy`` proxy to the wrapped executor, so the
    runner can configure a chaos-wrapped executor exactly like a bare one.
    """

    def __init__(self, inner: Any, schedule: ChaosSchedule) -> None:
        if not hasattr(inner, "map_tasks"):
            raise TypeError(f"not an executor: {inner!r}")
        self.inner = inner
        self.schedule = schedule

    @property
    def retry(self) -> Optional[RetryPolicy]:
        return getattr(self.inner, "retry", None)

    @retry.setter
    def retry(self, policy: Optional[RetryPolicy]) -> None:
        self.inner.retry = policy

    @property
    def failure_policy(self) -> str:
        return getattr(self.inner, "failure_policy", "fail_fast")

    @failure_policy.setter
    def failure_policy(self, policy: str) -> None:
        self.inner.failure_policy = validate_failure_policy(policy)

    @property
    def stats(self) -> Dict[str, int]:
        return getattr(self.inner, "stats", {})

    def map_tasks(self, tasks: Sequence[Any]) -> Iterator[Tuple[int, Any]]:
        previous = os.environ.get(CHAOS_ENV)
        os.environ[CHAOS_ENV] = json.dumps(self.schedule.to_mapping(), sort_keys=True)
        try:
            yield from self.inner.map_tasks(tasks)
        finally:
            if previous is None:
                os.environ.pop(CHAOS_ENV, None)
            else:
                os.environ[CHAOS_ENV] = previous

    def __repr__(self) -> str:
        return f"ChaosExecutor({self.inner!r}, {self.schedule!r})"
