"""FIG3 — TDC characteristic differential non-linearity (paper Figure 3).

The paper characterises the FPGA (Virtex-II Pro, 200 MHz, 96-element carry
chain) delay-line TDC with a code-density test and plots the per-code DNL; the
INL is reported to stay below 1 LSB.  This benchmark runs the same
code-density procedure on the behavioural carry-chain model and prints the DNL
series (ASCII rendering of the figure) plus the DNL/INL summary statistics.
"""

import numpy as np
import pytest

from repro.analysis.plotting import ascii_line_plot, series_csv
from repro.analysis.report import ReportTable, TextReport
from repro.simulation.randomness import RandomSource
from repro.tdc import calibrate_from_code_density, code_density_test
from repro.tdc.calibration import calibration_residual_inl
from repro.tdc.fpga import build_fpga_tdc

SAMPLES = 60_000


def run_code_density():
    tdc = build_fpga_tdc(random_source=RandomSource(42))
    report = code_density_test(tdc, samples=SAMPLES, random_source=RandomSource(7))
    return tdc, report


def test_fig3_dnl_characteristic(benchmark):
    tdc, density = benchmark.pedantic(run_code_density, rounds=1, iterations=1)

    report = TextReport(
        "FIG3",
        "TDC characteristic DNL (code-density test, XC2VP40-style carry chain)",
        paper_claim="Figure 3 shows a saw-tooth DNL of the 96-element chain; INL below 1 LSB",
    )
    report.add_text(
        f"Code-density test with {SAMPLES} uniformly distributed hits over the "
        f"{tdc.usable_range * 1e9:.2f} ns range ({density.codes.size} codes analysed)."
    )
    report.add_text("DNL versus code (reproduction of the Figure 3 curve):")
    report.add_text(ascii_line_plot(density.codes, density.dnl, width=72, height=14))

    table = ReportTable(columns=["metric", "value"])
    table.add_row("DNL peak [LSB]", density.dnl_peak)
    table.add_row("DNL rms [LSB]", density.dnl_rms)
    table.add_row("INL peak (raw) [LSB]", density.inl_peak)
    table.add_row("missing codes", density.missing_codes().size)
    report.add_table(table, caption="DNL/INL summary")

    # The paper keeps the INL below 1 LSB through regular calibration.
    calibration = calibrate_from_code_density(tdc, samples=2 * SAMPLES, random_source=RandomSource(9))
    residual = calibration_residual_inl(tdc, calibration, probe_points=600)
    report.add_comparison("DNL structure", "periodic saw-tooth, sub-LSB", f"peak {density.dnl_peak:.2f} LSB saw-tooth")
    report.add_comparison("INL", "< 1 LSB", f"{residual:.2f} LSB after calibration ({density.inl_peak:.2f} raw)")
    report.add_text("CSV series (code, DNL, INL):")
    report.add_text(series_csv(density.codes, density.dnl, density.inl, header=["code", "dnl_lsb", "inl_lsb"]))
    print()
    print(report.render())

    assert density.dnl_peak < 1.5
    assert residual < 1.0
