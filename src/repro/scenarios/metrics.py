"""Metric registry for scenario experiments.

A metric maps the aggregated outcome of one experiment point — payload bits,
bit/symbol error counts, detection breakdown, the point's link configuration —
to a single float, optionally with a 95 % confidence half-width.  Scenarios
name their metrics as strings; the registry resolves them so that scenario
definitions stay declarative (and serialisable) while new figures of merit can
be plugged in without touching the runner.

The error-count primitives (``count_bit_errors`` / ``count_symbol_errors``)
live in :mod:`repro.modulation.symbols` and are shared with
:class:`~repro.core.link.TransmissionResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.analysis.statistics import binomial_confidence_95
from repro.core.config import LinkConfig


@dataclass(frozen=True)
class PointOutcome:
    """Aggregated Monte-Carlo outcome of one experiment point.

    Produced by the :class:`~repro.scenarios.runner.ExperimentRunner` from the
    chunked batch transmissions; consumed by the registered metric functions.
    ``bits``/``bit_errors`` always aggregate over every channel; multichannel
    points additionally carry the per-channel split (``channel_bits`` /
    ``channel_bit_errors``) that the per-channel metric variants consume.
    """

    config: LinkConfig
    bits: int
    bit_errors: int
    symbols: int
    symbol_errors: int
    detection_counts: Mapping[str, int] = field(default_factory=dict)
    channels: int = 1
    channel_bits: Tuple[int, ...] = ()
    channel_bit_errors: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.bits <= 0 or self.symbols <= 0:
            raise ValueError("a point outcome needs at least one bit and one symbol")
        if not 0 <= self.bit_errors <= self.bits:
            raise ValueError("bit_errors must be within [0, bits]")
        if not 0 <= self.symbol_errors <= self.symbols:
            raise ValueError("symbol_errors must be within [0, symbols]")
        if self.channels < 1:
            raise ValueError("channels must be at least 1")
        object.__setattr__(self, "channel_bits", tuple(self.channel_bits))
        object.__setattr__(self, "channel_bit_errors", tuple(self.channel_bit_errors))
        if len(self.channel_bits) != len(self.channel_bit_errors):
            raise ValueError("channel_bits and channel_bit_errors must pair up")
        for errors, bits in zip(self.channel_bit_errors, self.channel_bits):
            if not 0 <= errors <= bits:
                raise ValueError("per-channel bit_errors must be within [0, bits]")

    @property
    def missed(self) -> int:
        return int(self.detection_counts.get("missed", 0))

    def worst_channel(self) -> Tuple[int, int]:
        """``(bit_errors, bits)`` of the channel with the highest BER.

        Falls back to the aggregate counts when no per-channel split was
        recorded (single-channel backends).  Channels that carried no bits are
        skipped.
        """
        best: Optional[Tuple[float, int, int]] = None
        for errors, bits in zip(self.channel_bit_errors, self.channel_bits):
            if bits == 0:
                continue
            rate = errors / bits
            if best is None or rate > best[0]:
                best = (rate, errors, bits)
        if best is None:
            return self.bit_errors, self.bits
        return best[1], best[2]


MetricFunction = Callable[[PointOutcome], float]
ConfidenceFunction = Callable[[PointOutcome], Optional[float]]

_METRICS: Dict[str, Tuple[MetricFunction, Optional[ConfidenceFunction]]] = {}


def register_metric(
    name: str,
    confidence: Optional[ConfidenceFunction] = None,
) -> Callable[[MetricFunction], MetricFunction]:
    """Decorator registering ``function`` as the metric called ``name``.

    ``confidence``, when given, computes the 95 % half-width reported next to
    the metric value (``None`` marks a deterministic metric with no
    statistical uncertainty).
    """

    def decorator(function: MetricFunction) -> MetricFunction:
        if name in _METRICS:
            raise ValueError(f"metric {name!r} is already registered")
        _METRICS[name] = (function, confidence)
        return function

    return decorator


def available_metrics() -> Tuple[str, ...]:
    """Names of every registered metric, in registration order."""
    return tuple(_METRICS)


def resolve_metric(name: str) -> Tuple[MetricFunction, Optional[ConfidenceFunction]]:
    """Look up a metric by name, raising with the available names on a miss."""
    try:
        return _METRICS[name]
    except KeyError:
        known = ", ".join(sorted(_METRICS))
        raise ValueError(f"unknown metric {name!r}; available: {known}") from None


def evaluate_metrics(
    names: Tuple[str, ...], outcome: PointOutcome
) -> Tuple[Dict[str, float], Dict[str, Optional[float]]]:
    """Evaluate the named metrics on ``outcome``.

    Returns ``(values, confidence)`` dicts keyed by metric name; confidence
    entries are 95 % half-widths or ``None`` for deterministic metrics.
    """
    values: Dict[str, float] = {}
    confidence: Dict[str, Optional[float]] = {}
    for name in names:
        function, ci = resolve_metric(name)
        values[name] = float(function(outcome))
        confidence[name] = None if ci is None else ci(outcome)
    return values, confidence


# -- built-in metrics -----------------------------------------------------------


@register_metric("ber", confidence=lambda o: binomial_confidence_95(o.bit_errors, o.bits))
def bit_error_rate(outcome: PointOutcome) -> float:
    """Fraction of payload bits decoded incorrectly."""
    return outcome.bit_errors / outcome.bits


@register_metric(
    "symbol_error_rate",
    confidence=lambda o: binomial_confidence_95(o.symbol_errors, o.symbols),
)
def symbol_error_rate(outcome: PointOutcome) -> float:
    """Fraction of PPM symbols decoded incorrectly."""
    return outcome.symbol_errors / outcome.symbols


@register_metric("throughput")
def throughput(outcome: PointOutcome) -> float:
    """Raw link throughput with back-to-back symbols [bit/s] (deterministic)."""
    return outcome.config.raw_bit_rate


@register_metric(
    "goodput",
    confidence=lambda o: o.config.raw_bit_rate
    * binomial_confidence_95(o.symbol_errors, o.symbols),
)
def goodput(outcome: PointOutcome) -> float:
    """Throughput of correctly decoded symbols [bit/s]."""
    return outcome.config.raw_bit_rate * (1.0 - outcome.symbol_errors / outcome.symbols)


@register_metric("tdc_throughput")
def tdc_throughput(outcome: PointOutcome) -> float:
    """TP(N, C) of the receiver's effective TDC design [bit/s] (deterministic).

    The paper's Figure 4 quantity: unlike :func:`throughput`, it depends on
    the TDC design point rather than on the PPM symbol timing, so it is the
    right column for design-space-grid scenarios.
    """
    return outcome.config.effective_tdc_design().throughput


@register_metric(
    "detection_rate",
    confidence=lambda o: binomial_confidence_95(o.missed, o.symbols),
)
def detection_rate(outcome: PointOutcome) -> float:
    """Fraction of measurement windows in which the SPAD reported a detection."""
    return 1.0 - outcome.missed / outcome.symbols


@register_metric("aggregate_throughput")
def aggregate_throughput(outcome: PointOutcome) -> float:
    """Raw throughput of all parallel channels together [bit/s] (deterministic).

    The communication-density figure of the paper's array argument: the
    per-channel raw bit rate times the number of channels running side by
    side.  Identical to :func:`throughput` for single-channel points.
    """
    return outcome.config.raw_bit_rate * outcome.channels


@register_metric(
    "worst_channel_ber",
    confidence=lambda o: binomial_confidence_95(*o.worst_channel()),
)
def worst_channel_ber(outcome: PointOutcome) -> float:
    """BER of the worst parallel channel (aggregate BER for single channels).

    Edge channels of a crosstalk-coupled array see fewer aggressors than
    centre channels, so the worst channel — not the mean — bounds the array's
    usable operating point.
    """
    errors, bits = outcome.worst_channel()
    return errors / bits
