"""EXT-CLOCK — optical clock distribution (the paper's announced future work).

Conclusions: "Further work ... including high-speed local clock
synchronization, expected to drastically reduce clock distribution power costs
with minimal or no area impact."  This benchmark compares a buffered H-tree
against an optical broadcast clock (one micro-LED, per-region SPAD receivers)
across frequency and reports the power saving, the residual skew and the area
of the added optical receivers.
"""

import pytest

from repro.analysis.report import ReportTable, TextReport
from repro.analysis.units import MHZ, format_si
from repro.core.area import link_area
from repro.core.clocking import (
    ElectricalClockTree,
    OpticalClockDistribution,
    compare_clock_distribution,
)

FREQUENCIES = [100 * MHZ, 200 * MHZ, 400 * MHZ, 800 * MHZ]


def run_clock_comparison():
    tree = ElectricalClockTree()
    optical = OpticalClockDistribution()
    return [compare_clock_distribution(frequency, tree, optical) for frequency in FREQUENCIES], optical


def test_optical_clock_distribution(benchmark):
    comparisons, optical = benchmark.pedantic(run_clock_comparison, rounds=1, iterations=1)

    report = TextReport(
        "EXT-CLOCK",
        "Electrical H-tree versus optical broadcast clock distribution",
        paper_claim="expected to drastically reduce clock distribution power costs with "
                    "minimal or no area impact",
    )
    table = ReportTable(columns=["frequency", "H-tree power", "optical power", "saving"])
    for comparison in comparisons:
        table.add_row(
            format_si(comparison.frequency, "Hz"),
            format_si(comparison.electrical_power, "W"),
            format_si(comparison.optical_power, "W"),
            f"{comparison.power_saving * 100:.0f} %",
        )
    report.add_table(table)

    receiver_area = optical.regions * link_area().receiver_area
    report.add_comparison("clock power", "drastically reduced",
                          f"{comparisons[1].power_saving * 100:.0f} % saving at 200 MHz")
    report.add_comparison("area impact", "minimal or none",
                          f"{receiver_area * 1e12:.0f} um^2 of SPAD receivers over the whole die "
                          f"({optical.regions} regions)")
    report.add_text(
        f"Residual region-to-region skew bound (uncorrelated SPAD jitter, ±3σ): "
        f"{format_si(optical.skew_bound(), 's')}"
    )
    print()
    print(report.render())

    assert all(comparison.power_saving > 0.3 for comparison in comparisons)
    assert receiver_area < 1e-6  # well below 1 mm^2 of added silicon
