"""Smoke execution of the named scenario library.

:func:`run_smoke` executes every library scenario end to end at a tiny trial
budget and raises :class:`SmokeFailure` on any exception or non-finite metric.
It is the engine behind ``benchmarks/bench_scenarios.py`` and the marked
tier-1 test ``tests/test_scenarios_smoke.py`` — a cheap guarantee that every
declarative scenario stays runnable as the link machinery evolves.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.scenarios.executors import Executor
from repro.scenarios.library import get_scenario, named_scenarios
from repro.scenarios.runner import ExperimentReport, ExperimentRunner


class SmokeFailure(AssertionError):
    """A named scenario failed to execute or produced a non-finite metric."""


def run_smoke(
    bits_per_point: int = 256,
    seed: int = 0,
    names: Optional[Sequence[str]] = None,
    executor: Union[None, str, Executor] = None,
    workers: Optional[int] = None,
) -> List[ExperimentReport]:
    """Run every (or the given) named scenario at a reduced budget.

    Returns the structured reports, in scenario-registration order.  Raises
    :class:`SmokeFailure` if any scenario raises or reports an invalid metric
    value (inf always; NaN unless the metric was registered with
    ``allow_nan=True``), naming the scenario (and metric/point) at fault.
    ``executor`` / ``workers`` select the grid-point dispatch (serial by
    default); reports are identical either way.
    """
    if bits_per_point <= 0:
        raise ValueError("bits_per_point must be positive")
    reports: List[ExperimentReport] = []
    for name in names if names is not None else named_scenarios():
        scenario = get_scenario(name).with_budget(bits_per_point)
        try:
            # ExperimentRunner.run itself raises on any NaN/inf metric value,
            # so every failure mode — exception or non-finite metric — lands
            # in this one wrapper, tagged with the scenario at fault.
            reports.append(
                ExperimentRunner(
                    scenario, seed=seed, executor=executor, workers=workers
                ).run()
            )
        except Exception as error:
            raise SmokeFailure(f"scenario {name!r} failed to run: {error}") from error
    return reports
