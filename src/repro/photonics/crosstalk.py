"""Optical crosstalk between neighbouring channels.

When many vertical channels run in parallel (the "communication density"
argument of the paper), light from one emitter can spill onto the SPAD of an
adjacent channel.  The model is geometric: the beam of a channel spreads with
distance, and the fraction of its power landing on a neighbour at pitch ``p``
falls off with the square of the ratio of detector size to beam offset.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class CrosstalkModel:
    """First-order optical crosstalk between parallel channels.

    Attributes
    ----------
    channel_pitch:
        Centre-to-centre spacing of adjacent channels [m].
    beam_diameter:
        Beam spot diameter at the detector plane [m].
    detector_diameter:
        Diameter of the SPAD active area [m].
    floor:
        Residual scattered-light crosstalk floor (fraction of channel power)
        that does not decrease with pitch.
    """

    channel_pitch: float = 50e-6
    beam_diameter: float = 20e-6
    detector_diameter: float = 8e-6
    floor: float = 1e-5

    def __post_init__(self) -> None:
        if self.channel_pitch <= 0:
            raise ValueError("channel_pitch must be positive")
        if self.beam_diameter <= 0:
            raise ValueError("beam_diameter must be positive")
        if self.detector_diameter <= 0:
            raise ValueError("detector_diameter must be positive")
        if not 0 <= self.floor < 1:
            raise ValueError("floor must be within [0, 1)")

    def coupling(self, neighbour_distance: float) -> float:
        """Fraction of a channel's optical power captured by a detector at ``neighbour_distance``.

        Distance zero means the channel's own detector: the Gaussian-beam
        capture fraction is returned.  For non-zero distances the Gaussian
        tail at the neighbour's position is integrated over the detector area.
        """
        if neighbour_distance < 0:
            raise ValueError("neighbour_distance must be non-negative")
        sigma = self.beam_diameter / 2.355  # FWHM -> sigma
        detector_area = math.pi * (self.detector_diameter / 2.0) ** 2
        # Gaussian irradiance at the neighbour centre, normalised to total power 1.
        peak = 1.0 / (2.0 * math.pi * sigma ** 2)
        irradiance = peak * math.exp(-(neighbour_distance ** 2) / (2.0 * sigma ** 2))
        fraction = min(1.0, irradiance * detector_area)
        return max(fraction, self.floor if neighbour_distance > 0 else fraction)

    def nearest_neighbour_crosstalk(self) -> float:
        """Crosstalk fraction onto the nearest neighbouring channel."""
        return self.coupling(self.channel_pitch)

    def crosstalk_matrix(self, channels: int) -> np.ndarray:
        """``channels x channels`` matrix of power coupling between a linear channel array."""
        if channels <= 0:
            raise ValueError("channels must be positive")
        matrix = np.empty((channels, channels))
        for i in range(channels):
            for j in range(channels):
                distance = abs(i - j) * self.channel_pitch
                matrix[i, j] = self.coupling(distance)
        return matrix

    def aggregate_interference(self, channels: int, victim: int) -> float:
        """Total crosstalk power (relative to one channel) landing on ``victim``."""
        matrix = self.crosstalk_matrix(channels)
        row = matrix[victim].copy()
        row[victim] = 0.0
        return float(row.sum())

    def minimum_pitch_for_isolation(self, isolation_db: float) -> float:
        """Smallest channel pitch achieving the requested isolation [m]."""
        if isolation_db <= 0:
            raise ValueError("isolation_db must be positive")
        target = 10.0 ** (-isolation_db / 10.0)
        if target <= self.floor:
            raise ValueError(
                f"requested isolation {isolation_db} dB is below the scattered-light floor"
            )
        sigma = self.beam_diameter / 2.355
        detector_area = math.pi * (self.detector_diameter / 2.0) ** 2
        peak = detector_area / (2.0 * math.pi * sigma ** 2)
        if target >= peak:
            return 0.0
        return float(sigma * math.sqrt(2.0 * math.log(peak / target)))
