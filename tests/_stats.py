"""Shared statistical assertions for equivalence tests.

Several suites compare two Monte-Carlo estimates that share physics but not
draws — scalar vs batch NoC paths, multichannel vs independent links, the
importance-sampling estimator vs naive Monte-Carlo.  Each used to roll its
own "within ~5 sigma of binomial noise" arithmetic; this module is the one
place that owns it, so every comparison states its false-positive budget the
same way:

* :func:`two_proportion_z` / :func:`assert_proportions_equal` — the pooled
  two-proportion z-test, the right tool for "same error rate, independent
  draws" claims;
* :func:`assert_intervals_overlap` — for estimators that publish their own
  confidence intervals (e.g. weighted importance-sampling means vs binomial
  naive means), where a proportion test does not apply;
* :func:`bonferroni_sigma` — widens a z-threshold so a parametrised sweep of
  ``comparisons`` tests keeps the *family-wise* false-positive rate of a
  single test, instead of silently multiplying it;
* :func:`resample_seeds` — mean and standard error of an estimator across
  independent seeds, for claims about an estimator's distribution rather
  than one realisation.

Everything is stdlib-only (``statistics.NormalDist``) so the helpers import
anywhere the tests do.
"""

from __future__ import annotations

import math
from statistics import NormalDist
from typing import Callable, Sequence, Tuple

_NORMAL = NormalDist()


def two_proportion_z(
    successes_a: float,
    total_a: int,
    successes_b: float,
    total_b: int,
) -> float:
    """The pooled two-proportion z statistic for ``H0: p_a == p_b``.

    The pooled variance is floored at ``1 / (total_a + total_b)`` so
    zero-success (or all-success) samples yield a finite statistic instead
    of dividing by zero — the same guard the old ad-hoc tolerances used.
    """
    if total_a <= 0 or total_b <= 0:
        raise ValueError("two_proportion_z needs positive sample sizes")
    pooled = (successes_a + successes_b) / (total_a + total_b)
    variance = max(pooled * (1.0 - pooled), 1.0 / (total_a + total_b))
    standard_error = math.sqrt(variance * (1.0 / total_a + 1.0 / total_b))
    return (successes_a / total_a - successes_b / total_b) / standard_error


def bonferroni_sigma(sigma: float, comparisons: int) -> float:
    """Widen a per-test z-threshold for a family of ``comparisons`` tests.

    Converts ``sigma`` to its two-sided tail probability, Bonferroni-divides
    it across the family, and converts back — so asserting each of N sweep
    points at ``bonferroni_sigma(s, N)`` keeps the *family* false-positive
    rate at the single-test rate of ``s``.
    """
    if comparisons < 1:
        raise ValueError(f"comparisons must be >= 1, got {comparisons}")
    if comparisons == 1:
        return sigma
    alpha = 2.0 * (1.0 - _NORMAL.cdf(sigma))
    return _NORMAL.inv_cdf(1.0 - (alpha / comparisons) / 2.0)


def assert_proportions_equal(
    successes_a: float,
    total_a: int,
    successes_b: float,
    total_b: int,
    *,
    sigma: float = 5.0,
    comparisons: int = 1,
    label: str = "proportions",
) -> None:
    """Assert two proportions are statistically indistinguishable.

    ``sigma`` is the single-test z-threshold (default 5: false-positive rate
    ~6e-7); ``comparisons`` widens it Bonferroni-style when the assert runs
    once per point of a parametrised sweep.
    """
    threshold = bonferroni_sigma(sigma, comparisons)
    z = two_proportion_z(successes_a, total_a, successes_b, total_b)
    assert abs(z) <= threshold, (
        f"{label}: {successes_a}/{total_a} vs {successes_b}/{total_b} "
        f"differ by {abs(z):.2f} sigma (threshold {threshold:.2f}, "
        f"{comparisons} comparison(s))"
    )


def assert_intervals_overlap(
    center_a: float,
    half_width_a: float,
    center_b: float,
    half_width_b: float,
    *,
    slack: float = 1.0,
    label: str = "confidence intervals",
) -> None:
    """Assert two confidence intervals ``center +/- half_width`` overlap.

    The estimators publish their own uncertainty (a weighted importance-
    sampling CI, a binomial CI), so the assert is on the intervals, not on
    a pooled variance.  ``slack`` scales both half-widths — two honest 95%
    intervals of the same quantity overlap with probability > 99% at
    ``slack=1``; raise it when an assert runs across many sweep points.
    """
    gap = abs(center_a - center_b) - slack * (half_width_a + half_width_b)
    assert gap <= 0.0, (
        f"{label}: {center_a:.4g} +/- {half_width_a:.2g} and "
        f"{center_b:.4g} +/- {half_width_b:.2g} do not overlap "
        f"(gap {gap:.2g} at slack {slack})"
    )


def resample_seeds(
    estimate: Callable[[int], float],
    seeds: Sequence[int],
) -> Tuple[float, float]:
    """Mean and standard error of ``estimate(seed)`` across independent seeds.

    For claims about an estimator's *distribution* (unbiasedness, variance
    reduction) rather than a single realisation: run it once per seed and
    return ``(mean, standard_error_of_the_mean)``.
    """
    values = [float(estimate(seed)) for seed in seeds]
    count = len(values)
    if count < 2:
        raise ValueError("resample_seeds needs at least two seeds")
    mean = sum(values) / count
    variance = sum((value - mean) ** 2 for value in values) / (count - 1)
    return mean, math.sqrt(variance / count)
