"""``python -m repro`` — drive the experiment layer without writing Python.

Four subcommands cover the run/inspect loop:

* ``repro list`` — catalogue the named library scenarios;
* ``repro run <scenario>`` — execute a scenario (choosing backend, executor,
  worker count, seed, per-point bit budget and chunk size), stream per-point
  progress, print the report table and persist the artefact into a
  :class:`~repro.scenarios.store.ReportStore`; ``repro run --file
  scenario.json`` runs a custom scenario mapping
  (:meth:`~repro.scenarios.scenario.Scenario.from_mapping`) — or a stored
  artefact — without registering it;
* ``repro show <artefact>`` — reload a stored artefact (by id or path) and
  print its report;
* ``repro compare <a> <b> --metric ber`` — per-point metric deltas between
  two artefacts, for longitudinal figure tracking.

Determinism carries through unchanged: ``repro run`` output is a function of
``(scenario, seed, chunk size)`` only — never of the executor or worker
count, and never of how many retries (``--retry``) a faulty machine needed.
Exit status is 0 on success, 2 for usage errors (argparse), 1 for domain
errors (unknown scenario, missing artefact), and 3 for a corrupt artefact
(:class:`~repro.scenarios.store.CorruptArtifactError` — the file exists but
fails digest/format verification); messages go to stderr.

Fault tolerance: ``repro run --retry N [--retry-timeout S]`` retries failing
or hung points deterministically; ``--failure-policy continue`` records
exhausted points in the report instead of aborting; completed points are
checkpointed incrementally whenever the run stores artefacts, so a killed
run resumes with ``repro run ... --resume`` re-evaluating only the missing
points (the final artefact digest equals an uninterrupted run's).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.analysis.report import ReportTable
from repro.core.backend import available_backends
from repro.scenarios import (
    CorruptArtifactError,
    ExperimentRunner,
    ReportStore,
    RetryPolicy,
    available_executors,
    get_scenario,
    named_scenarios,
)
from repro.scenarios.runner import DEFAULT_CHUNK_SYMBOLS

#: Exit status for artefacts that exist but fail verification — distinct
#: from 1 (domain errors) so calling scripts can trigger quarantine/re-run.
EXIT_CORRUPT_ARTIFACT = 3

DEFAULT_STORE = "artifacts"


def _format_parameters(parameters) -> str:
    """One grid point's swept values as a display label."""
    return ", ".join(f"{k}={v}" for k, v in parameters.items()) or "<single point>"


def _status(message: str) -> None:
    """Progress/status line to stderr.

    A consumer that closed stderr (``repro run ... 2>&1 | head``) must cost
    us the progress lines, never the simulation or its artefact.
    """
    try:
        print(message, file=sys.stderr)
    except BrokenPipeError:
        pass


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run, store and compare the paper's scenario experiments.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    list_cmd = commands.add_parser("list", help="catalogue the named scenarios")
    list_cmd.add_argument("--json", action="store_true", help="machine-readable output")

    run_cmd = commands.add_parser("run", help="execute one scenario (named or from a file)")
    run_cmd.add_argument("scenario", nargs="?", default=None,
                         help="library scenario name (see `list`)")
    run_cmd.add_argument("--file", default=None, metavar="PATH",
                         help="run a scenario from a JSON mapping "
                              "(Scenario.from_mapping; no registration needed)")
    # Not argparse choices=: aliases ("fast", "array") and backends registered
    # at runtime must stay usable, so validation happens in resolve_backend.
    run_cmd.add_argument("--backend", default=None,
                         help=f"link backend override ({', '.join(available_backends())})")
    run_cmd.add_argument("--executor", default=None, choices=available_executors(),
                         help="grid-point dispatch (default: serial)")
    run_cmd.add_argument("--workers", type=int, default=None,
                         help="process-pool size (implies --executor process)")
    run_cmd.add_argument("--seed", type=int, default=0, help="root seed (default 0)")
    run_cmd.add_argument("--bits", type=int, default=None,
                         help="payload bits per grid point (default: the scenario's budget)")
    run_cmd.add_argument("--chunk-symbols", type=int, default=DEFAULT_CHUNK_SYMBOLS,
                         help="symbols per Monte-Carlo chunk (fixes the seeding layout)")
    run_cmd.add_argument("--store", default=DEFAULT_STORE,
                         help=f"artefact store directory (default {DEFAULT_STORE!r})")
    run_cmd.add_argument("--no-store", action="store_true",
                         help="do not persist the report artefact")
    run_cmd.add_argument("--json", action="store_true",
                         help="print the report mapping as JSON instead of the table")
    run_cmd.add_argument("--quiet", action="store_true",
                         help="suppress per-point progress lines")
    run_cmd.add_argument("--retry", type=int, default=None, metavar="N",
                         help="attempts per grid point (default 1: no retry)")
    run_cmd.add_argument("--retry-timeout", type=float, default=None, metavar="SECONDS",
                         help="per-attempt wall-clock budget (hung points are "
                              "killed and retried; needs --retry)")
    run_cmd.add_argument("--retry-backoff", type=float, default=None, metavar="SECONDS",
                         help="base delay before a retry, growing exponentially "
                              "with deterministic jitter (needs --retry)")
    run_cmd.add_argument("--failure-policy", default=None,
                         choices=("fail_fast", "continue"),
                         help="what an exhausted point does: abort the run "
                              "(fail_fast, default) or land in the report as a "
                              "structured failure (continue)")
    run_cmd.add_argument("--resume", action="store_true",
                         help="pick up a killed run's checkpoint from the store, "
                              "re-evaluating only the missing points")

    show_cmd = commands.add_parser("show", help="print a stored report artefact")
    show_cmd.add_argument("artifact", help="artefact id or path")
    show_cmd.add_argument("--store", default=DEFAULT_STORE,
                          help=f"artefact store directory (default {DEFAULT_STORE!r})")
    show_cmd.add_argument("--json", action="store_true",
                          help="print the report mapping as JSON instead of the table")

    compare_cmd = commands.add_parser(
        "compare", help="per-point metric deltas between two artefacts"
    )
    compare_cmd.add_argument("artifact_a", help="baseline artefact id or path")
    compare_cmd.add_argument("artifact_b", help="candidate artefact id or path")
    compare_cmd.add_argument("--metric", required=True, help="metric name to diff")
    compare_cmd.add_argument("--store", default=DEFAULT_STORE,
                             help=f"artefact store directory (default {DEFAULT_STORE!r})")
    compare_cmd.add_argument("--json", action="store_true",
                             help="machine-readable output")
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    names = named_scenarios()
    if args.json:
        catalogue = []
        for name in names:
            scenario = get_scenario(name)
            catalogue.append(
                {
                    "name": name,
                    "description": scenario.description,
                    "points": scenario.point_count(),
                    "backend": scenario.backend,
                    "channels": scenario.channels,
                    "bits_per_point": scenario.bits_per_point,
                }
            )
        print(json.dumps(catalogue, indent=2))
        return 0
    table = ReportTable(columns=["scenario", "points", "backend", "channels", "bits/point"])
    for name in names:
        scenario = get_scenario(name)
        table.add_row(
            name,
            scenario.point_count(),
            scenario.backend,
            scenario.channels,
            scenario.bits_per_point,
        )
    print(table.render())
    return 0


def _get_scenario(name: str):
    """Library lookup with the KeyError converted at the call site.

    ``main()`` deliberately does not catch KeyError — an internal one should
    surface as a traceback — so the curated lookup message is rethrown as
    the domain-error type it is.
    """
    try:
        return get_scenario(name)
    except KeyError as error:
        raise ValueError(error.args[0]) from None


def _load_scenario_file(path: str):
    """A :class:`Scenario` from a JSON mapping on disk (``run --file``).

    Accepts either a bare scenario mapping or a stored report artefact (the
    envelope's ``report.scenario`` mapping), so a previous run's artefact can
    be re-run directly.
    """
    try:
        with open(path) as handle:
            data = json.load(handle)
    except json.JSONDecodeError as error:
        raise ValueError(f"scenario file {path!r} is not valid JSON: {error}") from error
    if not isinstance(data, dict):
        raise ValueError(f"scenario file {path!r} must hold a JSON object")
    if "report" in data and isinstance(data["report"], dict):
        data = data["report"]
    if "scenario" in data and isinstance(data["scenario"], dict):
        data = data["scenario"]
    from repro.scenarios import Scenario

    return Scenario.from_mapping(data)


def _retry_policy(args: argparse.Namespace) -> Optional[RetryPolicy]:
    if args.retry is None:
        if args.retry_timeout is not None or args.retry_backoff is not None:
            raise ValueError("--retry-timeout/--retry-backoff need --retry N")
        return None
    return RetryPolicy(
        max_attempts=args.retry,
        timeout=args.retry_timeout,
        backoff=args.retry_backoff if args.retry_backoff is not None else 0.0,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    if (args.scenario is None) == (args.file is None):
        raise ValueError(
            "pass exactly one of a scenario name or --file PATH (see `repro list`)"
        )
    if args.resume and args.no_store:
        raise ValueError("--resume reads the checkpoint from the store; drop --no-store")
    if args.file is not None:
        scenario = _load_scenario_file(args.file)
    else:
        scenario = _get_scenario(args.scenario)
    if args.bits is not None:
        scenario = scenario.with_budget(args.bits)
    runner = ExperimentRunner(
        scenario,
        seed=args.seed,
        backend=args.backend,
        chunk_symbols=args.chunk_symbols,
        executor=args.executor,
        workers=args.workers,
        retry=_retry_policy(args),
        failure_policy=args.failure_policy,
    )
    checkpoint = None
    if not args.no_store:
        # Storing runs always checkpoint: a killed run can resume instead of
        # starting over.  A fresh (non-resume) run discards any stale
        # checkpoint left by a previous identical invocation.
        checkpoint = ReportStore(args.store).run_checkpoint(
            scenario.to_mapping(), runner.backend, args.seed, args.chunk_symbols
        )
        if not args.resume:
            checkpoint.discard()
    with runner.session(checkpoint=checkpoint) as session:
        if not args.quiet:
            _status(
                f"running {scenario.name!r}: {session.total_points} point(s), "
                f"backend={runner.backend}, executor={session.executor!r}"
            )
            if session.resumed_points:
                _status(
                    f"resuming: {session.resumed_points} of {session.total_points} "
                    f"point(s) restored from checkpoint"
                )
        for point in session:
            if not args.quiet:
                shown = _format_parameters(point.parameters)
                _status(f"  [{session.completed_points}/{session.total_points}] {shown}")
        report = session.report()
        for failure in session.failed_points:
            _status(
                f"  FAILED {_format_parameters(failure.parameters)}: "
                f"{failure.error_type} after {failure.attempts} attempt(s)"
            )
    # Persist before printing: a closed stdout pipe must never cost the
    # artefact of a completed simulation.
    if not args.no_store:
        path = ReportStore(args.store).save(report)
        _status(f"artefact: {path}")
        if checkpoint is not None:
            checkpoint.discard()
    if args.json:
        print(json.dumps(report.to_mapping(), indent=2))
    else:
        print(report.summary())
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    store = ReportStore(args.store)
    report = store.load(args.artifact)
    if args.json:
        print(json.dumps(report.to_mapping(), indent=2))
    else:
        print(report.summary())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    store = ReportStore(args.store)
    try:
        comparison = store.compare(args.artifact_a, args.artifact_b, args.metric)
    except KeyError as error:  # point.metric: unknown metric name
        raise ValueError(error.args[0]) from None
    if args.json:
        print(json.dumps(comparison, indent=2))
        return 0
    table = ReportTable(columns=["parameters", "a", "b", "delta"])
    for row in comparison["points"]:
        table.add_row(_format_parameters(row["parameters"]), row["a"], row["b"], row["delta"])
    print(f"metric {args.metric!r}: {args.artifact_a} -> {args.artifact_b}")
    print(table.render())
    for side, key in (("a", "only_a"), ("b", "only_b")):
        if comparison[key]:
            print(f"points only in {side}: {comparison[key]}")
    return 0


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "show": _cmd_show,
    "compare": _cmd_compare,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return _COMMANDS[args.command](args)
    except CorruptArtifactError as error:
        # The artefact exists but is damaged (truncated, digest mismatch):
        # a distinct status so callers can quarantine/re-run mechanically.
        print(f"error: {error.args[0] if error.args else error}", file=sys.stderr)
        if error.path is not None:
            print(
                f"hint: move it aside with ReportStore.quarantine({str(error.path)!r}) "
                f"and re-run the scenario",
                file=sys.stderr,
            )
        return EXIT_CORRUPT_ARTIFACT
    except (ValueError, FileNotFoundError) as error:
        # Domain errors (unknown scenario/metric/artefact, bad values) — not
        # tracebacks.  KeyError is deliberately absent: curated lookups
        # convert theirs at the call site, so an internal KeyError anywhere
        # else surfaces as a real traceback instead of `error: 'somekey'`.
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream closed the pipe (`repro run ... | head`): exit quietly.
        # Redirect stdout to devnull so the interpreter's shutdown flush
        # does not raise a second time.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
