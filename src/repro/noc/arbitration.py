"""Bus arbitration.

The optical bus is a shared broadcast medium: every die's SPAD sees every
pulse, so only one transmitter may own a symbol slot at a time.  Two classic
schemes are provided:

* :class:`TdmaSchedule` — a fixed time-division schedule (each die owns a
  recurring slot), zero arbitration latency but wasted slots under asymmetric
  load; and
* :class:`RoundRobinArbiter` — a work-conserving round-robin over the dies
  that actually have pending packets.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class TdmaSchedule:
    """Static slot ownership: slot ``t`` belongs to ``owners[t % len(owners)]``."""

    owners: Sequence[int]

    def __post_init__(self) -> None:
        if len(self.owners) == 0:
            raise ValueError("a TDMA schedule needs at least one owner")
        if any(owner < 0 for owner in self.owners):
            raise ValueError("owner ids must be non-negative")

    @property
    def frame_length(self) -> int:
        return len(self.owners)

    def owner_of_slot(self, slot: int) -> int:
        if slot < 0:
            raise ValueError("slot must be non-negative")
        return self.owners[slot % self.frame_length]

    def owners_of_slots(self, slots: Sequence[int]) -> np.ndarray:
        """Vectorised :meth:`owner_of_slot` over an array of slots."""
        slots = np.asarray(slots, dtype=np.int64)
        if slots.size and int(slots.min()) < 0:
            raise ValueError("slot must be non-negative")
        return np.asarray(self.owners, dtype=np.int64)[slots % self.frame_length]

    def slots_for(self, owner: int) -> List[int]:
        """Slot offsets within a frame owned by ``owner``."""
        return [index for index, candidate in enumerate(self.owners) if candidate == owner]

    def share_of(self, owner: int) -> float:
        """Fraction of the bus bandwidth allocated to ``owner``."""
        return len(self.slots_for(owner)) / self.frame_length

    def next_slot_for(self, owner: int, from_slot: int) -> int:
        """First slot at or after ``from_slot`` owned by ``owner``."""
        offsets = self.slots_for(owner)
        if not offsets:
            raise ValueError(f"owner {owner} has no slots in the schedule")
        if from_slot < 0:
            raise ValueError("from_slot must be non-negative")
        frame_start = (from_slot // self.frame_length) * self.frame_length
        for frame in (frame_start, frame_start + self.frame_length):
            for offset in offsets:
                slot = frame + offset
                if slot >= from_slot:
                    return slot
        raise RuntimeError("unreachable")  # pragma: no cover

    @classmethod
    def uniform(cls, node_count: int) -> "TdmaSchedule":
        """One slot per node, in node order."""
        if node_count <= 0:
            raise ValueError("node_count must be positive")
        return cls(owners=tuple(range(node_count)))


class RoundRobinArbiter:
    """Work-conserving round-robin arbitration over requesting nodes.

    Requests carry an optional *arrival slot*: :meth:`grant` called with the
    current slot only considers requests that have already arrived, so offered
    load shapes queueing the way it does on real slotted buses.  Called
    without a slot, every pending request is eligible (the legacy
    drain-everything behaviour).
    """

    def __init__(self, node_count: int) -> None:
        if node_count <= 0:
            raise ValueError("node_count must be positive")
        self.node_count = node_count
        # Each queue holds (arrival_slot, item); heads stay arrival-ordered
        # because requests are enqueued in arrival order per node.
        self._pending: Dict[int, Deque[tuple]] = {node: deque() for node in range(node_count)}
        self._next = 0
        self._grants = 0
        # Lazy-deletion min-heap over (arrival, node) of every request ever
        # enqueued; next_arrival() pops entries that no longer match their
        # node's queue head instead of scanning all nodes.
        self._heads: List[Tuple[int, int]] = []

    def request(self, node: int, item: object, arrival: int = 0) -> None:
        """Enqueue a transmission request for ``node``, arriving at ``arrival``."""
        if node not in self._pending:
            raise ValueError(f"unknown node {node}")
        if arrival < 0:
            raise ValueError("arrival slot must be non-negative")
        queue = self._pending[node]
        if queue and queue[-1][0] > arrival:
            raise ValueError(
                f"requests for node {node} must be enqueued in arrival order "
                f"(got arrival {arrival} after arrival {queue[-1][0]})"
            )
        queue.append((arrival, item))
        heapq.heappush(self._heads, (arrival, node))

    def pending_count(self, node: Optional[int] = None) -> int:
        if node is None:
            return sum(len(queue) for queue in self._pending.values())
        return len(self._pending[node])

    def next_arrival(self) -> Optional[int]:
        """Earliest arrival slot among pending requests (``None`` when empty).

        The slot at which an idling bus next has work — callers skip idle
        slots to it instead of polling slot by slot.  Amortised O(1): the
        head heap is consulted top-down and stale entries (items already
        granted) are discarded lazily, so the total cleanup work over a run
        is bounded by the number of requests ever enqueued.
        """
        while self._heads:
            arrival, node = self._heads[0]
            queue = self._pending[node]
            # Every queued item was pushed on the heap, so the heap top is a
            # lower bound on every current head; when it still matches its
            # node's head it IS the minimum.
            if queue and queue[0][0] == arrival:
                return arrival
            heapq.heappop(self._heads)
        return None

    def grant(self, slot: Optional[int] = None) -> Optional[tuple]:
        """Grant the bus to the next requesting node.

        Returns ``(node, item)`` or ``None`` when no node has an *eligible*
        request — pending work that has arrived by ``slot`` (any pending work
        when ``slot`` is ``None``).  The rotation pointer only advances past
        the granted node, preserving fairness under sustained load.
        """
        for offset in range(self.node_count):
            node = (self._next + offset) % self.node_count
            queue = self._pending[node]
            if queue and (slot is None or queue[0][0] <= slot):
                _, item = queue.popleft()
                self._next = (node + 1) % self.node_count
                self._grants += 1
                return node, item
        return None

    def snapshot(self) -> Tuple[np.ndarray, List[object], np.ndarray]:
        """Flatten the pending queues for the vectorised arbitration kernel.

        Returns ``(arrivals, items, node_bounds)``: every queued item's
        arrival slot and payload grouped by node in queue order, with CSR
        bounds mapping node ``n`` to ``arrivals[node_bounds[n]:node_bounds[n+1]]``
        — the layout :func:`repro.kernels.round_robin_schedule` consumes.
        The queues are not modified; pair with :meth:`commit_grants`.
        """
        arrivals: List[int] = []
        items: List[object] = []
        bounds = np.zeros(self.node_count + 1, dtype=np.int64)
        for node in range(self.node_count):
            for arrival, item in self._pending[node]:
                arrivals.append(arrival)
                items.append(item)
            bounds[node + 1] = len(arrivals)
        return np.asarray(arrivals, dtype=np.int64), items, bounds

    def commit_grants(self, granted_per_node: Sequence[int], next_pointer: int) -> None:
        """Apply the outcome of a scheduled epoch computed from a snapshot.

        Pops ``granted_per_node[n]`` items from the head of node ``n``'s
        queue (the kernel grants strictly in queue order) and moves the
        rotation pointer to ``next_pointer``, keeping :attr:`grants_issued`
        and :meth:`next_arrival` consistent with the scalar grant loop.
        """
        total = 0
        for node, count in enumerate(granted_per_node):
            count = int(count)
            queue = self._pending[node]
            if count > len(queue):
                raise ValueError(
                    f"cannot commit {count} grants for node {node}: "
                    f"only {len(queue)} pending"
                )
            for _ in range(count):
                queue.popleft()
            total += count
        self._next = int(next_pointer) % self.node_count
        self._grants += total

    @property
    def next_node(self) -> int:
        """The rotation pointer: first node considered by the next grant."""
        return self._next

    @property
    def grants_issued(self) -> int:
        return self._grants
