"""Tests for repro.analysis.statistics."""

import numpy as np
import pytest

from repro.analysis.statistics import (
    Histogram,
    RunningStats,
    binomial_confidence_95,
    bootstrap_confidence_interval,
    cumulative_distribution,
    geometric_mean,
    percentile,
    weighted_mean_confidence_95,
)


class TestRunningStats:
    def test_mean_and_variance(self):
        stats = RunningStats()
        stats.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.mean == pytest.approx(5.0)
        assert stats.variance == pytest.approx(32.0 / 7.0)
        assert stats.count == 8

    def test_min_max_tracking(self):
        stats = RunningStats()
        stats.extend([3.0, -1.0, 10.0])
        assert stats.minimum == -1.0
        assert stats.maximum == 10.0

    def test_single_sample_variance_is_zero(self):
        stats = RunningStats()
        stats.add(5.0)
        assert stats.variance == 0.0

    def test_empty_raises(self):
        stats = RunningStats()
        with pytest.raises(ValueError):
            _ = stats.mean

    def test_matches_numpy_on_random_data(self):
        rng = np.random.default_rng(0)
        data = rng.normal(3.0, 2.0, size=500)
        stats = RunningStats()
        stats.extend(data)
        assert stats.mean == pytest.approx(float(np.mean(data)))
        assert stats.std == pytest.approx(float(np.std(data, ddof=1)))

    def test_standard_error(self):
        stats = RunningStats()
        stats.extend([1.0, 2.0, 3.0, 4.0])
        assert stats.standard_error() == pytest.approx(stats.std / 2.0)


class TestHistogram:
    def test_basic_binning(self):
        hist = Histogram(low=0.0, high=10.0, bins=10)
        hist.extend([0.5, 1.5, 1.6, 9.9])
        assert hist.counts[0] == 1
        assert hist.counts[1] == 2
        assert hist.counts[9] == 1
        assert hist.total == 4

    def test_out_of_range_counted_separately(self):
        hist = Histogram(low=0.0, high=1.0, bins=4)
        hist.add(-0.1)
        hist.add(1.0)  # high edge is exclusive
        assert hist.underflow == 1
        assert hist.overflow == 1
        assert hist.total == 0

    def test_add_and_extend_agree(self):
        values = [0.1, 0.25, 0.33, 0.7, 0.99]
        one = Histogram(low=0.0, high=1.0, bins=5)
        two = Histogram(low=0.0, high=1.0, bins=5)
        for v in values:
            one.add(v)
        two.extend(values)
        assert np.array_equal(one.counts, two.counts)

    def test_normalized_sums_to_one(self):
        hist = Histogram(low=0.0, high=1.0, bins=4)
        hist.extend([0.1, 0.3, 0.6, 0.9])
        assert hist.normalized().sum() == pytest.approx(1.0)

    def test_mean_estimate(self):
        hist = Histogram(low=0.0, high=10.0, bins=100)
        hist.extend(np.full(1000, 5.0))
        assert hist.mean() == pytest.approx(5.05, abs=0.06)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Histogram(low=1.0, high=0.0, bins=4)
        with pytest.raises(ValueError):
            Histogram(low=0.0, high=1.0, bins=0)

    def test_empty_mean_raises(self):
        hist = Histogram(low=0.0, high=1.0, bins=4)
        with pytest.raises(ValueError):
            hist.mean()


class TestPercentileAndBootstrap:
    def test_percentile_median(self):
        assert percentile([1.0, 2.0, 3.0], 50) == pytest.approx(2.0)

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_bootstrap_brackets_true_mean(self):
        rng = np.random.default_rng(1)
        data = rng.normal(10.0, 1.0, size=200)
        low, high = bootstrap_confidence_interval(data, confidence=0.95, resamples=300, seed=2)
        assert low < 10.0 < high
        assert high - low < 1.0

    def test_bootstrap_validation(self):
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([], 0.95)
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([1.0], confidence=1.5)


class TestOtherHelpers:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 10.0, 100.0]) == pytest.approx(10.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_cumulative_distribution(self):
        xs, ps = cumulative_distribution([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert ps[-1] == pytest.approx(1.0)
        assert ps[0] == pytest.approx(1.0 / 3.0)


class TestBinomialConfidence:
    """Boundary behaviour of the 95% binomial half-width.

    The degenerate edges (0 or n-of-n successes) used to collapse the
    normal approximation to a zero-width interval; they now fall back to
    the rule-of-three bound, clamped so the interval never leaves [0, 1]
    and the result is never NaN.
    """

    def test_interior_matches_normal_approximation(self):
        assert binomial_confidence_95(50, 100) == pytest.approx(
            1.96 * np.sqrt(0.25 / 100)
        )

    @pytest.mark.parametrize("total", [1, 2, 3, 10, 1_000, 10**9])
    def test_zero_successes_rule_of_three(self, total):
        half = binomial_confidence_95(0, total)
        assert half == pytest.approx(min(1.0, 3.0 / total))
        assert 0.0 < half <= 1.0
        assert np.isfinite(half)

    @pytest.mark.parametrize("total", [1, 2, 3, 10, 1_000, 10**9])
    def test_all_successes_mirrors_zero(self, total):
        assert binomial_confidence_95(total, total) == binomial_confidence_95(0, total)

    @pytest.mark.parametrize("total", [1, 2])
    def test_tiny_samples_clamp_to_unit_interval(self, total):
        # 3/total > 1 for total < 3: the raw rule of three would imply an
        # interval outside the probability range.
        assert binomial_confidence_95(0, total) == 1.0
        assert binomial_confidence_95(total, total) == 1.0

    @pytest.mark.parametrize(
        "successes,total",
        [(0, 1), (1, 1), (0, 2), (2, 2), (1, 2), (1, 3), (2, 3), (999, 1000)],
    )
    def test_never_nan_and_within_unit_interval(self, successes, total):
        half = binomial_confidence_95(successes, total)
        assert np.isfinite(half)
        assert 0.0 <= half <= 1.0

    def test_single_error_is_wider_than_none(self):
        # Monotonic sanity at the edge: observing one error must not shrink
        # the interval below the zero-error bound's order of magnitude.
        assert binomial_confidence_95(1, 10_000) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            binomial_confidence_95(0, 0)
        with pytest.raises(ValueError):
            binomial_confidence_95(-1, 10)
        with pytest.raises(ValueError):
            binomial_confidence_95(11, 10)


class TestWeightedMeanConfidence:
    def test_unit_weights_match_binomial_shape(self):
        # With 0/1 samples the weighted CI reduces to the binomial normal
        # approximation up to the n-1 vs n variance denominator.
        errors, total = 50, 100
        half = weighted_mean_confidence_95(float(errors), float(errors), total)
        p = errors / total
        assert half == pytest.approx(
            1.96 * np.sqrt(p * (1 - p) * total / (total - 1) / total)
        )

    def test_single_sample_is_zero_not_nan(self):
        assert weighted_mean_confidence_95(3.0, 9.0, 1) == 0.0

    def test_identical_samples_have_zero_width(self):
        # sum = n*w, sumsq = n*w**2 -> zero variance exactly.
        assert weighted_mean_confidence_95(10.0, 10.0, 10) == 0.0

    def test_float_cancellation_never_goes_negative(self):
        # Large offset + tiny spread: the two-pass formula can cancel to a
        # slightly negative variance; the helper must clamp, not sqrt(NaN).
        half = weighted_mean_confidence_95(2.0e8, 2.0e13, 2_000_000)
        assert np.isfinite(half)
        assert half >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_mean_confidence_95(1.0, 1.0, 0)
        with pytest.raises(ValueError):
            weighted_mean_confidence_95(1.0, 1.0, -5)
