"""TXT-GBPS — "throughputs of several gigabits per second may be achieved" (abstract).

A single SPAD can only report one detection per detection cycle, yet PPM packs
``log2(N) + C`` bits into that detection.  This benchmark demonstrates the
claim on two paths:

* the analytical design space: the highest-throughput (small range) designs
  exceed several Gbit/s when paired with fast-quenched SPADs, and
* the simulated link: a single channel matched to a 32 ns SPAD runs at
  ~125 Mbit/s, and a modest array of parallel channels (as in the 64x64 array
  of ref [5]) aggregates to several Gbit/s at the measured per-channel BER.
"""

import pytest

from repro.analysis.report import ReportTable, TextReport
from repro.analysis.units import NS, PS, format_si
from repro.core.backend import make_link
from repro.core.config import LinkConfig
from repro.core.design_space import DesignSpace

PARALLEL_CHANNELS = 32
BITS_PER_CHANNEL = 2_000


def run_links():
    # Fast-quenched SPAD (short detection cycle) with a fine-only TDC range.
    fast_config = LinkConfig(
        ppm_bits=4, slot_duration=500 * PS, spad_dead_time=8 * NS, mean_detected_photons=80.0
    )
    fast_link = make_link(fast_config, backend="batch", seed=3)
    fast_result = fast_link.transmit_random(BITS_PER_CHANNEL)

    # Conservative 32 ns detection cycle, matched range.
    slow_config = LinkConfig(
        ppm_bits=4, slot_duration=500 * PS, spad_dead_time=32 * NS, mean_detected_photons=80.0
    )
    slow_results = [
        make_link(slow_config, backend="batch", seed=100 + channel).transmit_random(
            BITS_PER_CHANNEL, payload_seed=channel
        )
        for channel in range(PARALLEL_CHANNELS)
    ]
    return fast_config, fast_result, slow_config, slow_results


def test_gbps_throughput(benchmark):
    fast_config, fast_result, slow_config, slow_results = benchmark.pedantic(
        run_links, rounds=1, iterations=1
    )

    space = DesignSpace(element_delay=54 * PS)
    peak = space.max_throughput()

    aggregate_rate = PARALLEL_CHANNELS * slow_config.raw_bit_rate
    aggregate_errors = sum(result.bit_errors for result in slow_results)
    aggregate_bits = sum(len(result.transmitted_bits) for result in slow_results)

    report = TextReport(
        "TXT-GBPS",
        "Reaching multi-Gbit/s throughput with PPM over SPAD receivers",
        paper_claim="throughputs of several gigabits per second may be achieved",
    )
    table = ReportTable(columns=["configuration", "raw throughput", "measured BER"])
    table.add_row(
        "analytical optimum of the (N, C) space (fast SPAD)",
        format_si(peak.throughput, "bit/s"),
        "n/a (analytical)",
    )
    table.add_row(
        f"single simulated channel, 8 ns detection cycle (K={fast_config.ppm_bits})",
        format_si(fast_config.raw_bit_rate, "bit/s"),
        f"{fast_result.bit_error_rate:.2e}",
    )
    table.add_row(
        f"single simulated channel, 32 ns detection cycle (K={slow_config.ppm_bits})",
        format_si(slow_config.raw_bit_rate, "bit/s"),
        f"{slow_results[0].bit_error_rate:.2e}",
    )
    table.add_row(
        f"{PARALLEL_CHANNELS} parallel channels (32 ns SPADs)",
        format_si(aggregate_rate, "bit/s"),
        f"{aggregate_errors / aggregate_bits:.2e}",
    )
    report.add_table(table)
    report.add_comparison("achievable throughput", "several Gbit/s",
                          f"{format_si(peak.throughput, 'bit/s')} analytical peak; "
                          f"{format_si(aggregate_rate, 'bit/s')} aggregated over {PARALLEL_CHANNELS} channels")
    print()
    print(report.render())

    assert peak.throughput > 2e9
    assert aggregate_rate > 2e9
    assert aggregate_errors / aggregate_bits < 0.05
