"""Delay element model with process/voltage/temperature (PVT) dependence.

The paper explicitly notes that *"the delay line is not dynamically adjusted
for temperature, voltage, or process variations"* and that correctness relies
on periodic calibration.  The element model therefore exposes the three PVT
knobs so that the calibration and coverage experiments can vary them.

The delay of element ``i`` at operating point ``(T, V)`` is

    d_i(T, V) = d_nom * (1 + mismatch_i)
                      * (1 + tc * (T - T_ref))
                      * (1 - vc * (V - V_ref))
                      * (1 + periodic_i)

where ``mismatch_i`` is a per-element Gaussian random mismatch (process
variation), ``tc`` is the temperature coefficient (delay increases with
temperature for CMOS buffers), ``vc`` is the supply-voltage coefficient
(delay decreases with higher supply), and ``periodic_i`` is a deterministic
structural component used to model FPGA carry chains whose routing makes every
k-th element systematically slower (this is what gives the characteristic
saw-tooth DNL of Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.units import PS
from repro.simulation.randomness import RandomSource


@dataclass(frozen=True)
class DelayElementModel:
    """Statistical description of one class of delay elements.

    Attributes
    ----------
    nominal_delay:
        Mean element delay ``d_nom`` at the reference operating point [s].
    mismatch_sigma:
        Relative standard deviation of the per-element random mismatch
        (e.g. ``0.08`` for 8 % sigma).
    temperature_coefficient:
        Relative delay change per kelvin (positive: slower when hot).
    voltage_coefficient:
        Relative delay change per volt of supply increase (positive value
        means the delay *decreases* when the supply rises).
    reference_temperature:
        Temperature at which ``nominal_delay`` holds [degC].
    reference_voltage:
        Supply voltage at which ``nominal_delay`` holds [V].
    structural_period:
        If positive, every ``structural_period``-th element receives an extra
        deterministic delay of ``structural_extra`` (relative), modelling FPGA
        carry-chain/CLB boundaries.
    structural_extra:
        Relative extra delay applied at structural boundaries.
    """

    nominal_delay: float = 54.0 * PS
    mismatch_sigma: float = 0.08
    temperature_coefficient: float = 1.0e-3
    voltage_coefficient: float = 0.15
    reference_temperature: float = 20.0
    reference_voltage: float = 1.5
    structural_period: int = 0
    structural_extra: float = 0.0

    def __post_init__(self) -> None:
        if self.nominal_delay <= 0:
            raise ValueError(f"nominal_delay must be positive, got {self.nominal_delay}")
        if self.mismatch_sigma < 0:
            raise ValueError(f"mismatch_sigma must be non-negative, got {self.mismatch_sigma}")
        if self.structural_period < 0:
            raise ValueError("structural_period must be non-negative")

    # -- scaling -----------------------------------------------------------
    def pvt_scale(self, temperature: float, voltage: Optional[float] = None) -> float:
        """Multiplicative delay scale factor at the given operating point."""
        if voltage is None:
            voltage = self.reference_voltage
        scale = 1.0 + self.temperature_coefficient * (temperature - self.reference_temperature)
        scale *= 1.0 - self.voltage_coefficient * (voltage - self.reference_voltage)
        if scale <= 0:
            raise ValueError(
                "operating point drives the element delay non-positive "
                f"(T={temperature} degC, V={voltage} V)"
            )
        return scale

    def mean_delay(self, temperature: Optional[float] = None, voltage: Optional[float] = None) -> float:
        """Mean element delay at an operating point (mismatch averaged out)."""
        if temperature is None:
            temperature = self.reference_temperature
        return self.nominal_delay * self.pvt_scale(temperature, voltage)

    def structural_profile(self, count: int) -> np.ndarray:
        """Deterministic relative extra delay per element (1 + periodic_i)."""
        profile = np.ones(count)
        if self.structural_period > 0 and self.structural_extra != 0.0:
            boundary = np.arange(count) % self.structural_period == self.structural_period - 1
            profile[boundary] += self.structural_extra
        return profile

    def sample_delays(
        self,
        count: int,
        random_source: Optional[RandomSource] = None,
        temperature: Optional[float] = None,
        voltage: Optional[float] = None,
    ) -> np.ndarray:
        """Draw per-element delays for a chain of ``count`` elements [s].

        The random mismatch is frozen per chain (process variation); the PVT
        scale is applied on top of it.  Delays are clipped to 10 % of nominal
        to keep them physical even in the far tail of the mismatch draw.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if temperature is None:
            temperature = self.reference_temperature
        if random_source is None:
            mismatch = np.zeros(count)
        else:
            mismatch = random_source.normal_array(0.0, self.mismatch_sigma, count)
        base = self.nominal_delay * (1.0 + mismatch) * self.structural_profile(count)
        base = np.clip(base, 0.1 * self.nominal_delay, None)
        return base * self.pvt_scale(temperature, voltage)

    def elements_to_cover(
        self,
        window: float,
        temperature: Optional[float] = None,
        voltage: Optional[float] = None,
        margin: float = 0.0,
    ) -> int:
        """Number of elements needed so the chain spans ``window`` seconds.

        ``margin`` adds a relative safety margin (e.g. ``0.03`` for 3 %).
        This is the sizing rule behind the paper's "96 elements to cover 5 ns"
        statement.
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if margin < 0:
            raise ValueError(f"margin must be non-negative, got {margin}")
        mean = self.mean_delay(temperature, voltage)
        return int(np.ceil(window * (1.0 + margin) / mean))
