"""TDC characterisation and calibration demo (paper Figures 2/3).

Run with ``python examples/tdc_calibration_demo.py``.

Recreates the receiver-side workflow of the paper's preliminary results: build
the 96-element carry-chain TDC of the 200 MHz FPGA proof of concept, run a
code-density test, plot (in ASCII) the DNL of Figure 3, then calibrate the
converter and show how the residual error stays bounded — and why the
calibration must be repeated when the temperature drifts.
"""

from repro.analysis.plotting import ascii_line_plot
from repro.analysis.units import NS, format_si
from repro.simulation.randomness import RandomSource
from repro.tdc import calibrate_from_code_density, code_density_test
from repro.tdc.calibration import calibration_residual_inl
from repro.tdc.fpga import VIRTEX2PRO_PROFILE, build_fpga_tdc


def main() -> None:
    print("=== FPGA carry-chain TDC characterisation (XC2VP40-style, 200 MHz) ===")
    tdc = build_fpga_tdc(VIRTEX2PRO_PROFILE, random_source=RandomSource(7))
    line = tdc.delay_line
    print(f"chain length        : {line.length} elements")
    print(f"mean element delay  : {format_si(line.mean_resolution(), 's')}")
    print(f"chain span          : {format_si(line.total_delay, 's')} (must cover 5 ns)")
    print(f"elements used (5 ns): {line.elements_used_for(5 * NS)} at {line.temperature:.0f} degC")

    print("\ncode-density test (uniform random hits over the 5 ns range)...")
    density = code_density_test(tdc, samples=60_000, random_source=RandomSource(1))
    print(density.summary())
    print("\nDNL versus code (Figure 3):")
    print(ascii_line_plot(density.codes, density.dnl, width=72, height=12))

    print("\ncalibrating from the code-density histogram...")
    table = calibrate_from_code_density(tdc, samples=120_000, random_source=RandomSource(2))
    residual = calibration_residual_inl(tdc, table, probe_points=500)
    print(f"effective LSB after calibration : {format_si(table.effective_lsb, 's')}")
    print(f"residual peak error             : {residual:.2f} LSB  (paper bound: < 1 LSB)")

    print("\ntemperature drift without recalibration:")
    for temperature in (20.0, 40.0, 60.0, 85.0):
        tdc.delay_line.set_operating_point(temperature=temperature)
        stale = calibration_residual_inl(tdc, table, probe_points=300)
        print(f"  {temperature:5.1f} degC : {stale:5.2f} LSB with the 20 degC table")
    tdc.delay_line.set_operating_point(temperature=85.0)
    fresh = calibrate_from_code_density(tdc, samples=120_000, random_source=RandomSource(3))
    print(f"  85.0 degC : {calibration_residual_inl(tdc, fresh, probe_points=300):5.2f} LSB after recalibrating")
    print("\n=> periodic calibration keeps the resolution bounded without any dynamic PVT compensation.")


if __name__ == "__main__":
    main()
