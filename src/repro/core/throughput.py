"""The paper's analytical throughput model (Section 3, Figure 4).

The TDC design is controlled by two parameters: ``N``, the number of fine
delay elements, and ``C``, the coarse range bits that extend the range by
``2^C``.  With a single element delay of δ the fine range is ``Rf = N·δ`` and

* ``MW(N, C) = (2^C + 1)·N·δ``   — measurement window, including one extra
  fine range assumed for TDC reset;
* ``TP(N, C) = (log2(N) + C) / MW(N, C)``   — achievable throughput in bits
  per second, since one conversion resolves ``log2(N) + C`` bits;
* ``DC(N, C) = 2^C·N·δ``   — the SPAD detection cycle chosen to match the TDC
  range.

These three functions, plus the :class:`TdcDesign` value object bundling
``(N, C, δ)``, are used verbatim by the Figure 4 benchmark and by the design
space explorer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.units import PS


def _validate(fine_elements: int, coarse_bits: int, element_delay: float) -> None:
    if fine_elements < 2:
        raise ValueError(f"fine_elements must be at least 2, got {fine_elements}")
    if coarse_bits < 0:
        raise ValueError(f"coarse_bits must be non-negative, got {coarse_bits}")
    if element_delay <= 0:
        raise ValueError(f"element_delay must be positive, got {element_delay}")


def measurement_window(fine_elements: int, coarse_bits: int, element_delay: float) -> float:
    """MW(N, C) = (2^C + 1)·N·δ — total allotted range including TDC reset [s].

    >>> from repro.analysis.units import PS
    >>> round(measurement_window(16, 0, 50 * PS) / PS)
    1600
    """
    _validate(fine_elements, coarse_bits, element_delay)
    return ((1 << coarse_bits) + 1) * fine_elements * element_delay


def detection_cycle(fine_elements: int, coarse_bits: int, element_delay: float) -> float:
    """DC(N, C) = 2^C·N·δ — SPAD detection cycle matched to the TDC range [s]."""
    _validate(fine_elements, coarse_bits, element_delay)
    return (1 << coarse_bits) * fine_elements * element_delay


def bits_per_symbol(fine_elements: int, coarse_bits: int) -> float:
    """log2(N) + C — bits resolved by one conversion."""
    if fine_elements < 2:
        raise ValueError(f"fine_elements must be at least 2, got {fine_elements}")
    if coarse_bits < 0:
        raise ValueError(f"coarse_bits must be non-negative, got {coarse_bits}")
    return math.log2(fine_elements) + coarse_bits


def throughput(fine_elements: int, coarse_bits: int, element_delay: float) -> float:
    """TP(N, C) = (log2(N) + C) / MW(N, C) — achievable throughput [bit/s]."""
    return bits_per_symbol(fine_elements, coarse_bits) / measurement_window(
        fine_elements, coarse_bits, element_delay
    )


@dataclass(frozen=True)
class TdcDesign:
    """A point in the paper's (N, C) design space with its element delay δ.

    The defaults correspond to the FPGA proof of concept: δ ≈ 54 ps
    (96 elements covering the 5 ns window of a 200 MHz clock).
    """

    fine_elements: int = 96
    coarse_bits: int = 4
    element_delay: float = 54.0 * PS

    def __post_init__(self) -> None:
        _validate(self.fine_elements, self.coarse_bits, self.element_delay)

    # -- the paper's three quantities ---------------------------------------
    @property
    def fine_range(self) -> float:
        """Rf = N·δ — span of the fine interpolator [s]."""
        return self.fine_elements * self.element_delay

    @property
    def measurement_window(self) -> float:
        """MW(N, C) [s]."""
        return measurement_window(self.fine_elements, self.coarse_bits, self.element_delay)

    @property
    def detection_cycle(self) -> float:
        """DC(N, C) [s]."""
        return detection_cycle(self.fine_elements, self.coarse_bits, self.element_delay)

    @property
    def throughput(self) -> float:
        """TP(N, C) [bit/s]."""
        return throughput(self.fine_elements, self.coarse_bits, self.element_delay)

    @property
    def bits_per_symbol(self) -> float:
        """log2(N) + C."""
        return bits_per_symbol(self.fine_elements, self.coarse_bits)

    @property
    def whole_bits_per_symbol(self) -> int:
        """Usable integer bits per conversion (floor of ``bits_per_symbol``)."""
        return int(math.floor(self.bits_per_symbol))

    # -- derived helpers ------------------------------------------------------
    @property
    def resolution(self) -> float:
        """Time resolution of the converter (one LSB = δ) [s]."""
        return self.element_delay

    @property
    def code_count(self) -> int:
        """Number of distinct time codes, 2^C · N."""
        return (1 << self.coarse_bits) * self.fine_elements

    def matches_dead_time(self, dead_time: float, tolerance: float = 0.25) -> bool:
        """True when the detection cycle is within ``tolerance`` of the SPAD dead time.

        The paper chooses DC to match the SPAD's dead time; a detection cycle
        much shorter than the dead time loses throughput to an idle SPAD, much
        longer wastes range.
        """
        if dead_time <= 0:
            raise ValueError("dead_time must be positive")
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        return abs(self.detection_cycle - dead_time) <= tolerance * dead_time

    def with_coarse_bits(self, coarse_bits: int) -> "TdcDesign":
        """Copy of the design with a different coarse range."""
        return TdcDesign(self.fine_elements, coarse_bits, self.element_delay)

    def with_fine_elements(self, fine_elements: int) -> "TdcDesign":
        """Copy of the design with a different fine chain length."""
        return TdcDesign(fine_elements, self.coarse_bits, self.element_delay)

    def scaled_delay(self, factor: float) -> "TdcDesign":
        """Copy of the design with the element delay scaled by ``factor``.

        Useful for moving between technologies (an ASIC delay line is several
        times faster than the FPGA carry chain).
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        return TdcDesign(self.fine_elements, self.coarse_bits, self.element_delay * factor)
