"""SPAD receiver arrays.

The paper's optical bus services many channels; each channel terminates on a
SPAD pixel.  A :class:`SpadArray` groups pixels and provides aggregate
figures: total area, aggregate throughput when channels run in parallel, and
coincidence (M-of-N) detection, which is a standard way to suppress dark
counts at the cost of requiring more optical power.

:func:`detect_in_windows_multichannel` is the array analogue of the batch
window pass :meth:`~repro.spad.device.SpadDevice.detect_in_windows`: one
``(symbols, channels)`` pass over every pixel of a parallel channel array,
with the per-element datapaths folded into a shared pipeline the way hardware
arrays fold them.  It is the detection core of the ``"multichannel"`` link
backend (:mod:`repro.core.multilink`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels import get_kernel
from repro.simulation.randomness import RandomSource
from repro.spad.device import (
    ORIGIN_CODE_MISSED,
    DetectionEvent,
    DetectionOrigin,
    ImportanceSettings,
    SpadConfig,
    SpadDevice,
)


def detect_in_windows_multichannel(
    device: SpadDevice,
    window_duration: float,
    photon_offsets: np.ndarray,
    mean_photons=1.0,
    generator: Optional[np.random.Generator] = None,
    secondary_offsets: Sequence[np.ndarray] = (),
    secondary_photons: Sequence[float] = (),
    background_mean=0.0,
    start_time: float = 0.0,
    resolver: str = "fast",
    importance: Optional[ImportanceSettings] = None,
    kernel: Optional[str] = None,
) -> Tuple[np.ndarray, ...]:
    """Batch window detection across ``C`` parallel channels at once.

    The multichannel analogue of
    :meth:`~repro.spad.device.SpadDevice.detect_in_windows`: window ``s`` of
    channel ``c`` spans ``[start_time + s*T, start_time + (s+1)*T)``, every
    channel is an *independent* pixel sharing ``device``'s physical models
    (PDP, quenching, dark counts, afterpulsing, jitter), and all randomness is
    pre-drawn as ``(S, C)`` bulk arrays — one draw per physical process, the
    same layout as the single-channel batch pass.

    Where the single-channel engine scans the windows of one device as a
    scalar Python loop, the dead-time/afterpulse recursion here is only
    sequential *along the window axis*: the loop runs over the ``S`` windows
    and resolves all ``C`` channels per step with array operations (the
    shared-pipeline fold that makes wide SPAD arrays cheap to simulate).

    Parameters
    ----------
    device:
        Template pixel; its models are shared by every channel.  The pass is
        stateless — each call starts from a fully armed, trap-free array and
        ``device`` state is never touched.
    window_duration:
        Window length ``T`` [s].
    photon_offsets:
        ``(S, C)`` window-relative arrival times of each channel's own optical
        pulse; ``NaN`` marks a window with no pulse.
    mean_photons:
        Mean photons per pulse on each channel's active area (scalar or
        ``(C,)``).
    generator:
        Bulk randomness source; a fresh default generator when ``None``.
    secondary_offsets / secondary_photons:
        Optional interference pulses (optical crosstalk): each entry of
        ``secondary_offsets`` is an ``(S, C)`` offset array (``NaN`` = none)
        giving, per victim channel, the arrival time of one neighbour's pulse;
        the matching ``secondary_photons`` entry is its mean photon count
        (scalar or ``(C,)``).  Detections they cause report origin code ``3``
        (:attr:`~repro.spad.device.DetectionOrigin.CROSSTALK`).
    background_mean:
        Expected *detected* background events per window and channel (scalar
        or ``(C,)``), uniform over the window — the merged scattered-light
        floor of many far channels.  Also reported as crosstalk.
    start_time:
        Absolute start of window 0 [s].
    resolver:
        ``"fast"`` (default) resolves windows speculatively in one vectorised
        pass and sequentially corrects only the rare windows where dead time
        or a pending afterpulse couples consecutive windows; ``"reference"``
        scans every window.  Both consume the same pre-drawn randomness and
        produce bit-identical output (locked by ``tests/test_spad_array.py``);
        the seam exists so the equivalence stays testable.
    kernel:
        Compute-kernel name (see :func:`repro.kernels.get_kernel`; ``None``
        defers to ``$REPRO_KERNEL`` / ``"auto"``).  When the resolved kernel
        carries a native resolver and ``resolver`` is ``"fast"``, the window
        resolution runs natively; all kernels are bit-identical to the
        Python paths, so the choice affects speed only.

    Returns ``(times, origins)``: ``(S, C)`` absolute detection times (``NaN``
    when a window reported nothing) and int8 origin codes (see
    :data:`~repro.spad.device.ORIGIN_BY_CODE`; ``-1`` = missed).

    When ``importance`` is given the photon/dark/afterpulse draws come from
    floored proposal distributions (:class:`~repro.spad.device.ImportanceSettings`)
    and a third ``(S, C)`` array of per-window likelihood weights is returned:
    ``(times, origins, weights)`` — the multichannel twin of the
    single-channel importance path.  Crosstalk interference couples channel
    likelihoods and is not supported under importance sampling.
    """
    if window_duration <= 0:
        raise ValueError("window_duration must be positive")
    offsets = np.asarray(photon_offsets, dtype=float)
    if offsets.ndim != 2:
        raise ValueError("photon_offsets must have shape (symbols, channels)")
    if len(secondary_offsets) != len(secondary_photons):
        raise ValueError("secondary_offsets and secondary_photons must pair up")
    windows, channels = offsets.shape
    if windows == 0 or channels == 0:
        if importance is not None:
            return np.empty(offsets.shape), np.empty(offsets.shape, dtype=np.int8), np.empty(offsets.shape)
        return np.empty(offsets.shape), np.empty(offsets.shape, dtype=np.int8)
    duration = float(window_duration)
    has_pulse = ~np.isnan(offsets)
    if np.any((offsets[has_pulse] < 0) | (offsets[has_pulse] >= duration)):
        raise ValueError("photon offsets must lie inside the window")
    rng = generator if generator is not None else np.random.default_rng()
    if importance is not None:
        if secondary_offsets or np.any(np.asarray(background_mean, dtype=float) > 0.0):
            raise ValueError(
                "importance sampling does not support crosstalk interference "
                "(secondary pulses or background floor couple channel likelihoods)"
            )
        return _detect_multichannel_importance(
            device, duration, offsets, has_pulse, mean_photons, rng, start_time, importance
        )

    pdp = device.detection_probability
    shape = (windows, channels)
    base = float(start_time)
    window_starts = base + np.arange(windows)[:, None] * duration

    def pulse_candidates(pulse_offsets: np.ndarray, photons) -> np.ndarray:
        """Absolute avalanche-candidate times of one optical pulse set (inf = none)."""
        present = ~np.isnan(pulse_offsets)
        p_detect = 1.0 - np.exp(-pdp * np.asarray(photons, dtype=float))
        detected = (rng.random(shape) < p_detect) & present
        jitter = device.jitter.sample_array(rng, shape)
        relative = np.maximum(np.where(present, pulse_offsets, 0.0) + jitter, 0.0)
        valid = detected & (relative < duration)
        return np.where(valid, window_starts + relative, np.inf)

    # Pre-drawn randomness, one bulk draw per physical process (the
    # detect_in_windows layout, widened to (S, C)).
    for sec in secondary_offsets:
        if np.asarray(sec).shape != offsets.shape:
            raise ValueError("secondary offsets must match photon_offsets' shape")
    primary = pulse_candidates(offsets, mean_photons)
    secondary = [
        pulse_candidates(np.asarray(sec, dtype=float), photons)
        for sec, photons in zip(secondary_offsets, secondary_photons)
    ]

    dark_rate = device.dark_counts.rate(device.config.temperature, device.config.excess_bias)
    dark_counts = rng.poisson(dark_rate * duration, shape)
    dark_rel = rng.uniform(0.0, duration, int(dark_counts.sum()))
    background_counts = rng.poisson(np.broadcast_to(background_mean, (channels,)), shape)
    background_rel = rng.uniform(0.0, duration, int(background_counts.sum()))
    trap_filled = rng.random(shape) < device.afterpulsing.probability
    trap_release = rng.exponential(device.afterpulsing.time_constant, shape)

    # CSR-style bounds so the (rare) dark/background events of window s,
    # channel c can be looked up without per-window array scans.
    dark_bounds = np.zeros(windows * channels + 1, dtype=np.int64)
    np.cumsum(dark_counts.ravel(), out=dark_bounds[1:])
    background_bounds = np.zeros(windows * channels + 1, dtype=np.int64)
    np.cumsum(background_counts.ravel(), out=background_bounds[1:])

    if resolver not in ("fast", "reference"):
        raise ValueError(f"resolver must be 'fast' or 'reference', got {resolver!r}")
    native = get_kernel(kernel).resolve_windows
    if native is not None and resolver == "fast":
        # Native kernels take the interference candidates stacked to
        # (K, S, C) and skip the per-window count arrays (bounds suffice).
        stacked = (
            np.stack(secondary)
            if secondary
            else np.empty((0, windows, channels))
        )
        return native(
            primary,
            stacked,
            dark_rel,
            dark_bounds,
            background_rel,
            background_bounds,
            trap_filled,
            trap_release,
            device.quenching.dead_time,
            device.quenching.effective_gate_recovery,
            duration,
            base,
        )
    resolve = _resolve_windows_fast if resolver == "fast" else _resolve_windows_reference
    return resolve(
        primary,
        secondary,
        dark_counts,
        dark_bounds,
        dark_rel,
        background_counts,
        background_bounds,
        background_rel,
        trap_filled,
        trap_release,
        device.quenching.dead_time,
        device.quenching.effective_gate_recovery,
        duration,
        base,
    )


def _resolve_windows_reference(
    primary,
    secondary,
    dark_counts,
    dark_bounds,
    dark_rel,
    background_counts,
    background_bounds,
    background_rel,
    trap_filled,
    trap_release,
    dead_time,
    gate_recovery,
    duration,
    base,
) -> Tuple[np.ndarray, np.ndarray]:
    """Window-by-window winner resolution (the straightforward scan).

    ``primary``/``secondary`` hold absolute avalanche-candidate times per
    window and channel (``inf`` = none); dark and background events come as
    CSR-indexed window-relative times.  This is the semantics-defining
    implementation: the fast resolver must match it bit for bit on the same
    pre-drawn inputs.
    """
    windows, channels = primary.shape
    dark_in_row = dark_counts.any(axis=1)
    background_in_row = background_counts.any(axis=1)
    last_fire = np.full(channels, -np.inf)
    pending = np.full(channels, np.inf)  # inf = no trap release pending
    out_times = np.full(primary.shape, np.nan)
    out_origins = np.full(primary.shape, ORIGIN_CODE_MISSED, dtype=np.int8)

    def apply_sparse(index, counts_row, bounds, relative, ready, best, origin, code, ws):
        for c in np.flatnonzero(counts_row):
            flat = index * channels + c
            for t in relative[bounds[flat] : bounds[flat + 1]]:
                t_abs = ws + t
                if t_abs >= ready[c] and t_abs < best[c]:
                    best[c] = t_abs
                    origin[c] = code

    # Sequential-dependency scan along the window axis only: the gated re-arm
    # and pending afterpulse of window s depend on when window s-1 fired, but
    # channels never couple, so each step resolves all C channels vectorised.
    for s in range(windows):
        ws = base + s * duration
        we = ws + duration
        ready = np.where(ws - last_fire >= gate_recovery, ws, last_fire + dead_time)

        candidate = primary[s]
        wins = (candidate >= ready) & np.isfinite(candidate)
        best = np.where(wins, candidate, np.inf)
        origin = np.where(wins, 0, ORIGIN_CODE_MISSED)
        for sec in secondary:
            candidate = sec[s]
            wins = (candidate >= ready) & (candidate < best)
            best = np.where(wins, candidate, best)
            origin = np.where(wins, 3, origin)
        if dark_in_row[s]:
            apply_sparse(s, dark_counts[s], dark_bounds, dark_rel, ready, best, origin, 1, ws)
        if background_in_row[s]:
            apply_sparse(
                s, background_counts[s], background_bounds, background_rel,
                ready, best, origin, 3, ws,
            )
        wins = (pending >= ws) & (pending < we) & (pending >= ready) & (pending < best)
        best = np.where(wins, pending, best)
        origin = np.where(wins, 2, origin)

        # A trap release before this window's end is consumed whether or not
        # it fired; a firing window samples the next release (same trap
        # semantics as the scalar and single-channel batch paths).
        consumed = pending < we
        fired = origin >= 0
        out_times[s] = np.where(fired, best, np.nan)
        out_origins[s] = origin
        last_fire = np.where(fired, best, last_fire)
        pending = np.where(
            fired,
            np.where(trap_filled[s], best + trap_release[s], np.inf),
            np.where(consumed, np.inf, pending),
        )
    return out_times, out_origins


def _detect_multichannel_importance(
    device: SpadDevice,
    duration: float,
    offsets: np.ndarray,
    has_pulse: np.ndarray,
    mean_photons,
    rng: np.random.Generator,
    start_time: float,
    importance: ImportanceSettings,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Importance-sampled multichannel pass: biased pre-draws + weighted scan.

    Channels are independent pixels, so each channel carries its own running
    likelihood-weight product with the same regenerative reset rule as the
    single-channel path (:meth:`SpadDevice.detect_in_windows` with
    ``importance``): the product restarts whenever the channel enters a
    window armed with no pending trap release.
    """
    windows, channels = offsets.shape
    shape = (windows, channels)
    base = float(start_time)
    window_starts = base + np.arange(windows)[:, None] * duration

    # Photon detection: floor the per-channel miss probability.
    pdp = device.detection_probability
    p_detect = 1.0 - np.exp(-pdp * np.asarray(mean_photons, dtype=float))
    miss_prob = 1.0 - p_detect
    proposal_miss = np.maximum(miss_prob, importance.min_miss_probability)
    proposal_detect = 1.0 - proposal_miss
    safe_detect = np.where(proposal_detect > 0.0, proposal_detect, 1.0)
    weight_detect = np.where(proposal_detect > 0.0, p_detect / safe_detect, 0.0)
    weight_miss = miss_prob / proposal_miss
    detected = (rng.random(shape) < proposal_detect) & has_pulse
    jitter = device.jitter.sample_array(rng, shape)
    relative = np.maximum(np.where(has_pulse, offsets, 0.0) + jitter, 0.0)
    valid = detected & (relative < duration)
    primary = np.where(valid, window_starts + relative, np.inf)
    photon_weight = np.where(has_pulse, np.where(detected, weight_detect, weight_miss), 1.0)

    # Dark counts: floor the expected counts per window; only the Poisson
    # count carries weight (positions are uniform under both measures).
    dark_rate = device.dark_counts.rate(device.config.temperature, device.config.excess_bias)
    dark_mean = dark_rate * duration
    proposal_dark_mean = max(dark_mean, importance.min_dark_expectation)
    dark_counts = rng.poisson(proposal_dark_mean, shape)
    dark_rel = rng.uniform(0.0, duration, int(dark_counts.sum()))
    dark_bounds = np.zeros(windows * channels + 1, dtype=np.int64)
    np.cumsum(dark_counts.ravel(), out=dark_bounds[1:])
    if proposal_dark_mean > 0.0:
        dark_weight = np.exp(proposal_dark_mean - dark_mean) * np.power(
            dark_mean / proposal_dark_mean, dark_counts.astype(float)
        )
    else:
        dark_weight = np.ones(shape)

    # Afterpulse trap fill: floor the fill probability; the factor applies at
    # the fire site where the draw is consumed.
    trap_prob = device.afterpulsing.probability
    proposal_trap = max(trap_prob, importance.min_trap_probability)
    trap_filled = rng.random(shape) < proposal_trap
    trap_release = rng.exponential(device.afterpulsing.time_constant, shape)
    weight_trap_filled = trap_prob / proposal_trap if proposal_trap > 0.0 else 1.0
    weight_trap_empty = (
        (1.0 - trap_prob) / (1.0 - proposal_trap) if proposal_trap < 1.0 else 0.0
    )
    trap_weight = np.where(trap_filled, weight_trap_filled, weight_trap_empty)

    dead_time = device.quenching.dead_time
    gate_recovery = device.quenching.effective_gate_recovery
    dark_in_row = dark_counts.any(axis=1)
    last_fire = np.full(channels, -np.inf)
    pending = np.full(channels, np.inf)
    running = np.ones(channels)
    out_times = np.full(shape, np.nan)
    out_origins = np.full(shape, ORIGIN_CODE_MISSED, dtype=np.int8)
    out_weights = np.ones(shape)

    # Same window-axis scan as _resolve_windows_reference, with per-channel
    # weight bookkeeping folded in.
    for s in range(windows):
        ws = base + s * duration
        we = ws + duration
        armed = ws - last_fire >= gate_recovery
        ready = np.where(armed, ws, last_fire + dead_time)
        running = np.where(armed & np.isinf(pending), 1.0, running)
        running = running * photon_weight[s] * dark_weight[s]

        candidate = primary[s]
        wins = (candidate >= ready) & np.isfinite(candidate)
        best = np.where(wins, candidate, np.inf)
        origin = np.where(wins, 0, ORIGIN_CODE_MISSED)
        if dark_in_row[s]:
            for c in np.flatnonzero(dark_counts[s]):
                flat = s * channels + c
                for t in dark_rel[dark_bounds[flat] : dark_bounds[flat + 1]]:
                    t_abs = ws + t
                    if t_abs >= ready[c] and t_abs < best[c]:
                        best[c] = t_abs
                        origin[c] = 1
        wins = (pending >= ws) & (pending < we) & (pending >= ready) & (pending < best)
        best = np.where(wins, pending, best)
        origin = np.where(wins, 2, origin)

        consumed = pending < we
        fired = origin >= 0
        running = np.where(fired, running * trap_weight[s], running)
        out_times[s] = np.where(fired, best, np.nan)
        out_origins[s] = origin
        out_weights[s] = running
        last_fire = np.where(fired, best, last_fire)
        pending = np.where(
            fired,
            np.where(trap_filled[s], best + trap_release[s], np.inf),
            np.where(consumed, np.inf, pending),
        )
    return out_times, out_origins, out_weights


def _resolve_windows_fast(
    primary,
    secondary,
    dark_counts,
    dark_bounds,
    dark_rel,
    background_counts,
    background_bounds,
    background_rel,
    trap_filled,
    trap_release,
    dead_time,
    gate_recovery,
    duration,
    base,
) -> Tuple[np.ndarray, np.ndarray]:
    """Speculate-then-correct winner resolution, bit-identical to the reference.

    Every candidate time lies inside its own window, so whenever a window's
    gated re-arm succeeds at the window start (``ready == window_start``) and
    no afterpulse is pending, the winner is simply the earliest candidate —
    computable for *all* windows and channels in one vectorised pass.  The
    sequential sweep then walks the windows touching only the exceptions:

    * channels whose previous avalanche happened within ``gate_recovery`` of
      this window's start (the dead time reaches in; candidates before
      ``last_fire + dead_time`` must be refiltered), and
    * channels with a pending trap release landing in this window (it may
      pre-empt the speculative winner, or fire a speculatively-missed window).

    Both are rare — a few percent of windows even with heavy afterpulsing —
    so the sweep is O(exceptions) Python work plus O(1) bookkeeping per
    window, instead of the reference's O(channels) array work per window.
    """
    windows, channels = primary.shape
    out_times = primary.copy()
    out_origins = np.where(np.isfinite(primary), 0, ORIGIN_CODE_MISSED).astype(np.int8)
    for sec in secondary:
        better = sec < out_times
        out_times[better] = sec[better]
        out_origins[better] = 3
    # Sparse dark/background candidates fold in with the same strict-< tie
    # rule the reference applies (primary, then secondaries, darks, floor).
    for flat in np.flatnonzero(dark_counts.ravel()):
        s, c = divmod(int(flat), channels)
        ws = base + s * duration
        for t in dark_rel[dark_bounds[flat] : dark_bounds[flat + 1]]:
            if ws + t < out_times[s, c]:
                out_times[s, c] = ws + t
                out_origins[s, c] = 1
    for flat in np.flatnonzero(background_counts.ravel()):
        s, c = divmod(int(flat), channels)
        ws = base + s * duration
        for t in background_rel[background_bounds[flat] : background_bounds[flat + 1]]:
            if ws + t < out_times[s, c]:
                out_times[s, c] = ws + t
                out_origins[s, c] = 3
    out_times[out_origins < 0] = np.nan
    # Row-wise latest speculative fire (for the scalar gate-violation check)
    # and the trap releases the speculative fires would sample.
    row_latest = np.max(np.where(out_origins >= 0, out_times, -np.inf), axis=1)
    trap_s, trap_c = np.nonzero(trap_filled & (out_origins >= 0))
    trap_row_bounds = np.searchsorted(trap_s, np.arange(windows + 1))

    def candidates_for(s, c, ws, ready):
        """Earliest valid candidate of (s, c) given a re-filter threshold."""
        best = np.inf
        origin = ORIGIN_CODE_MISSED
        t = primary[s, c]
        if np.isfinite(t) and t >= ready:
            best, origin = t, 0
        for sec in secondary:
            t = sec[s, c]
            if t >= ready and t < best:
                best, origin = t, 3
        flat = s * channels + c
        for t in dark_rel[dark_bounds[flat] : dark_bounds[flat + 1]]:
            if ws + t >= ready and ws + t < best:
                best, origin = ws + t, 1
        for t in background_rel[background_bounds[flat] : background_bounds[flat + 1]]:
            if ws + t >= ready and ws + t < best:
                best, origin = ws + t, 3
        return best, origin

    last_fire = np.full(channels, -np.inf)
    max_last_fire = -np.inf
    pending: dict = {}  # channel -> absolute trap-release time
    for s in range(windows):
        ws = base + s * duration
        we = ws + duration
        resolve: dict = {}  # channel -> ready threshold (gate-blocked channels)
        if not ws - max_last_fire >= gate_recovery:
            # Same float expression as the reference's ready computation, so
            # borderline comparisons resolve identically.
            for c in np.flatnonzero(~(ws - last_fire >= gate_recovery)):
                resolve[int(c)] = last_fire[c] + dead_time
        resolved = ()
        row_changed = False
        if resolve:
            resolved = tuple(resolve)
            row_changed = True
            for c, ready in resolve.items():
                best, origin = candidates_for(s, c, ws, ready)
                release = pending.get(c)
                if (
                    release is not None
                    and ws <= release < we
                    and release >= ready
                    and release < best
                ):
                    best, origin = release, 2
                if origin >= 0:
                    out_times[s, c] = best
                    out_origins[s, c] = origin
                    # _register_fire: the fire consumes/replaces any pending
                    # release and samples the next one.
                    if trap_filled[s, c]:
                        pending[c] = best + trap_release[s, c]
                    else:
                        pending.pop(c, None)
                else:
                    out_times[s, c] = np.nan
                    out_origins[s, c] = ORIGIN_CODE_MISSED
                    if release is not None and release < we:
                        del pending[c]  # consumed without firing
        if pending:
            # Unblocked channels: every speculative candidate was valid, so a
            # pending release wins exactly when it is strictly earliest — an
            # O(1) comparison against the speculative winner, no recompute.
            for c in list(pending):
                if c in resolved:
                    continue
                release = pending[c]
                if release < we:
                    speculative = out_times[s, c]
                    if release >= ws and (np.isnan(speculative) or release < speculative):
                        out_times[s, c] = release
                        out_origins[s, c] = 2
                        row_changed = True
                        if trap_filled[s, c]:
                            pending[c] = release + trap_release[s, c]
                        else:
                            del pending[c]
                    else:
                        del pending[c]  # consumed: lost the race or stale
                elif out_origins[s, c] >= 0:
                    del pending[c]  # replaced by this window's fire
        # Bookkeeping from the row's final outcomes.
        row = out_times[s]
        if row_changed:
            finite = row[~np.isnan(row)]
            latest = finite.max() if finite.size else -np.inf
        else:
            latest = row_latest[s]
        if latest > -np.inf:
            fired_row = ~np.isnan(row)
            last_fire[fired_row] = row[fired_row]
            if latest > max_last_fire:
                max_last_fire = latest
        for i in range(trap_row_bounds[s], trap_row_bounds[s + 1]):
            c = int(trap_c[i])
            if c not in resolved and out_origins[s, c] >= 0:
                pending[c] = out_times[s, c] + trap_release[s, c]
    return out_times, out_origins


class SpadArray:
    """A rectangular array of identical SPAD pixels.

    Parameters
    ----------
    rows, columns:
        Array geometry; ref [5] demonstrated a 64x64 array.
    pixel_pitch:
        Centre-to-centre pixel spacing [m].
    config:
        Per-pixel configuration shared by all pixels.
    seed:
        Seed used to derive independent random streams per pixel.
    """

    def __init__(
        self,
        rows: int,
        columns: int,
        pixel_pitch: float = 25e-6,
        config: SpadConfig = SpadConfig(),
        seed: int = 0,
    ) -> None:
        if rows <= 0 or columns <= 0:
            raise ValueError("rows and columns must be positive")
        if pixel_pitch <= 0:
            raise ValueError("pixel_pitch must be positive")
        self.rows = rows
        self.columns = columns
        self.pixel_pitch = pixel_pitch
        self.config = config
        root = RandomSource(seed)
        self._pixels: List[SpadDevice] = [
            SpadDevice(config=config, random_source=root.spawn(f"pixel:{index}"))
            for index in range(rows * columns)
        ]
        # Bulk stream for the vectorised multichannel window pass; independent
        # of the per-pixel streams so scalar and batch use stay reproducible.
        self._batch_source = root.spawn("batch")

    # -- geometry -------------------------------------------------------------
    @property
    def pixel_count(self) -> int:
        return self.rows * self.columns

    @property
    def footprint_area(self) -> float:
        """Total silicon area of the array [m^2]."""
        return self.rows * self.columns * self.pixel_pitch ** 2

    def pixel(self, row: int, column: int) -> SpadDevice:
        if not (0 <= row < self.rows and 0 <= column < self.columns):
            raise IndexError(f"pixel ({row}, {column}) outside {self.rows}x{self.columns} array")
        return self._pixels[row * self.columns + column]

    def pixels(self) -> Sequence[SpadDevice]:
        return tuple(self._pixels)

    def reset(self) -> None:
        for pixel in self._pixels:
            pixel.reset()

    # -- aggregate behaviour -----------------------------------------------------
    def aggregate_dark_count_rate(self) -> float:
        """Total DCR of the array [counts/s]."""
        return sum(pixel.dark_count_rate for pixel in self._pixels)

    def detect_in_window(
        self,
        window_start: float,
        window_duration: float,
        photon_time: Optional[float],
        mean_photons_per_pixel: float,
    ) -> List[Optional[DetectionEvent]]:
        """Run the same measurement window on every pixel (broadcast pulse)."""
        return [
            pixel.detect_in_window(window_start, window_duration, photon_time, mean_photons_per_pixel)
            for pixel in self._pixels
        ]

    def detect_in_windows(
        self,
        window_duration: float,
        photon_offsets: np.ndarray,
        mean_photons_per_pixel=1.0,
        start_time: float = 0.0,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised batch window pass over the first ``C`` pixels.

        ``photon_offsets`` has shape ``(symbols, C)`` with ``C`` at most
        :attr:`pixel_count` — column ``c`` is the per-window pulse offset seen
        by pixel ``c`` (``NaN`` = no pulse), as in
        :meth:`SpadDevice.detect_in_windows`.  All pixels are simulated in one
        :func:`detect_in_windows_multichannel` pass; statistically equivalent
        to running each pixel's scalar window loop, deterministic per array
        seed, and stateless (per-pixel scalar state is untouched).
        """
        offsets = np.asarray(photon_offsets, dtype=float)
        if offsets.ndim != 2:
            raise ValueError("photon_offsets must have shape (symbols, channels)")
        if offsets.shape[1] > self.pixel_count:
            raise ValueError(
                f"array has {self.pixel_count} pixels, got {offsets.shape[1]} channels"
            )
        return detect_in_windows_multichannel(
            self._pixels[0],
            window_duration,
            offsets,
            mean_photons=mean_photons_per_pixel,
            generator=self._batch_source.generator,
            start_time=start_time,
        )

    def coincidence_detect(
        self,
        window_start: float,
        window_duration: float,
        photon_time: Optional[float],
        mean_photons_per_pixel: float,
        required: int,
        coincidence_window: float,
    ) -> Optional[float]:
        """M-of-N coincidence detection across the array.

        Returns the median detection time of the earliest group of at least
        ``required`` pixels whose detections fall within ``coincidence_window``
        of each other, or ``None``.  Dark counts are uncorrelated between
        pixels, so requiring a coincidence suppresses them exponentially.
        """
        if required <= 0 or required > self.pixel_count:
            raise ValueError("required must be within [1, pixel_count]")
        if coincidence_window <= 0:
            raise ValueError("coincidence_window must be positive")
        events = self.detect_in_window(
            window_start, window_duration, photon_time, mean_photons_per_pixel
        )
        times = np.sort(np.asarray([e.time for e in events if e is not None], dtype=float))
        if times.size < required:
            return None
        for i in range(times.size - required + 1):
            group = times[i : i + required]
            if group[-1] - group[0] <= coincidence_window:
                return float(np.median(group))
        return None

    def channel_slice(self, count: int) -> List[SpadDevice]:
        """The first ``count`` pixels, used as independent parallel channels."""
        if not 0 < count <= self.pixel_count:
            raise ValueError(f"count must be within [1, {self.pixel_count}]")
        return list(self._pixels[:count])
