"""TDC calibration.

The paper's delay line *"is not dynamically adjusted for temperature, voltage,
or process variations.  To achieve correctness we rely on regular calibration
so as to ensure a fix bound on resolution."*  This module implements that
calibration: a code-density measurement is turned into a per-code lookup table
mapping output codes to (statistically estimated) bin centres, which removes
most of the INL and keeps the effective resolution bounded across operating
points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.simulation.randomness import RandomSource
from repro.tdc.converter import TimeToDigitalConverter
from repro.tdc.nonlinearity import code_density_test


@dataclass
class CalibrationTable:
    """Per-code correction table produced by a code-density calibration.

    Attributes
    ----------
    codes:
        The output codes covered by the table.
    bin_edges:
        Estimated left edge of each code's time bin [s], one entry per code,
        plus a final right edge (length ``len(codes) + 1``).
    temperature:
        Operating temperature at which the calibration was acquired [degC].
    """

    codes: np.ndarray
    bin_edges: np.ndarray
    temperature: float

    def __post_init__(self) -> None:
        if self.bin_edges.size != self.codes.size + 1:
            raise ValueError("bin_edges must have exactly one more entry than codes")
        if np.any(np.diff(self.bin_edges) < 0):
            raise ValueError("bin_edges must be non-decreasing")

    @property
    def bin_centers(self) -> np.ndarray:
        """Estimated centre of each code's bin [s]."""
        return (self.bin_edges[:-1] + self.bin_edges[1:]) / 2.0

    @property
    def bin_widths(self) -> np.ndarray:
        """Estimated width of each code's bin [s]."""
        return np.diff(self.bin_edges)

    @property
    def effective_lsb(self) -> float:
        """Mean calibrated bin width [s]."""
        return float(np.mean(self.bin_widths))

    def correct(self, code: int) -> float:
        """Map an output code to its calibrated time estimate (bin centre).

        Codes outside the calibrated span are clamped to the nearest entry —
        the hardware equivalent of reporting the first/last calibrated code.
        """
        index = int(np.searchsorted(self.codes, code))
        index = int(np.clip(index, 0, self.codes.size - 1))
        if self.codes[index] != code and index > 0 and abs(self.codes[index - 1] - code) < abs(
            self.codes[index] - code
        ):
            index -= 1
        return float(self.bin_centers[index])

    def correct_many(self, codes: Sequence[int]) -> np.ndarray:
        return np.asarray([self.correct(int(code)) for code in codes], dtype=float)

    def resolution_bound(self) -> float:
        """Worst-case half-bin width — the "fix bound on resolution" [s]."""
        return float(np.max(self.bin_widths)) / 2.0


def calibrate_from_code_density(
    tdc: TimeToDigitalConverter,
    samples: int = 200_000,
    random_source: Optional[RandomSource] = None,
) -> CalibrationTable:
    """Build a :class:`CalibrationTable` from a code-density measurement.

    With uniformly distributed hits, the probability of each code is
    proportional to its bin width; cumulative sums of the histogram therefore
    estimate the bin edges up to the known total range.
    """
    report = code_density_test(tdc, samples=samples, random_source=random_source)
    counts = report.counts.astype(float)
    total = counts.sum()
    if total <= 0:
        raise ValueError("calibration requires a non-empty code-density histogram")
    # The analysed span covers the usable range of the converter.
    span = tdc.usable_range
    widths = counts / total * span
    edges = np.concatenate([[0.0], np.cumsum(widths)])
    return CalibrationTable(
        codes=report.codes.copy(),
        bin_edges=edges,
        temperature=tdc.delay_line.temperature,
    )


def calibration_residual_inl(
    tdc: TimeToDigitalConverter,
    table: CalibrationTable,
    probe_points: int = 2_000,
) -> float:
    """Peak residual error (in LSB) after applying the calibration table.

    Probes the converter with a deterministic ramp of arrival times, converts
    each through the calibration table, and reports the largest absolute error
    normalised by the effective LSB.  A successful calibration keeps this
    below ~1 LSB, the paper's INL bound.
    """
    if probe_points <= 1:
        raise ValueError("probe_points must exceed 1")
    # Keep clear of the exact range end where the converter saturates.
    times = np.linspace(0.0, tdc.usable_range * 0.999, probe_points)
    errors = np.empty(probe_points)
    # The table maps codes to positions measured from the start of the range
    # along the *code axis*; convert() codes grow with arrival time.
    for i, true_time in enumerate(times):
        conversion = tdc.convert(float(true_time))
        corrected = table.correct(conversion.code)
        errors[i] = corrected - true_time
    # Remove any constant offset (alignment of the time zero) before taking
    # the peak, as INL is defined net of offset and gain.
    errors -= np.mean(errors)
    return float(np.max(np.abs(errors)) / table.effective_lsb)
