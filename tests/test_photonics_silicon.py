"""Tests for repro.photonics.silicon."""

import pytest

from repro.analysis.units import NM, UM
from repro.photonics.silicon import (
    SiliconAbsorption,
    fresnel_interface_transmission,
    silicon_absorption_coefficient,
)


class TestAbsorptionCoefficient:
    def test_monotone_decrease_with_wavelength(self):
        assert (
            silicon_absorption_coefficient(450 * NM)
            > silicon_absorption_coefficient(650 * NM)
            > silicon_absorption_coefficient(850 * NM)
            > silicon_absorption_coefficient(1050 * NM)
        )

    def test_order_of_magnitude_at_850nm(self):
        # Standard tabulations put alpha(850 nm) around 5e4 1/m (1/e depth ~18 um).
        alpha = silicon_absorption_coefficient(850 * NM)
        assert 2e4 < alpha < 2e5

    def test_clamps_out_of_range(self):
        assert silicon_absorption_coefficient(2000 * NM) == silicon_absorption_coefficient(1100 * NM)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            silicon_absorption_coefficient(0.0)


class TestSlabTransmission:
    def test_thin_die_transmits_more_than_thick(self):
        slab = SiliconAbsorption(wavelength=850 * NM)
        assert slab.transmission(10 * UM) > slab.transmission(50 * UM)

    def test_zero_thickness_is_transparent(self):
        assert SiliconAbsorption(wavelength=650 * NM).transmission(0.0) == pytest.approx(1.0)

    def test_nir_penetrates_farther_than_blue(self):
        assert (
            SiliconAbsorption(wavelength=850 * NM).penetration_depth()
            > SiliconAbsorption(wavelength=450 * NM).penetration_depth()
        )

    def test_temperature_increases_absorption(self):
        slab = SiliconAbsorption(wavelength=850 * NM)
        assert slab.transmission(25 * UM, temperature=100.0) < slab.transmission(25 * UM, temperature=27.0)

    def test_max_thickness_inverse_of_transmission(self):
        slab = SiliconAbsorption(wavelength=850 * NM)
        thickness = slab.max_thickness_for_transmission(0.5)
        assert slab.transmission(thickness) == pytest.approx(0.5, rel=1e-6)
        with pytest.raises(ValueError):
            slab.max_thickness_for_transmission(1.5)

    def test_negative_thickness_rejected(self):
        with pytest.raises(ValueError):
            SiliconAbsorption(wavelength=850 * NM).transmission(-1.0)


class TestFresnel:
    def test_silicon_air_interface_loses_about_30_percent(self):
        assert fresnel_interface_transmission(1.0, 3.5) == pytest.approx(0.69, abs=0.02)

    def test_matched_indices_are_lossless(self):
        assert fresnel_interface_transmission(1.5, 1.5) == pytest.approx(1.0)

    def test_symmetric(self):
        assert fresnel_interface_transmission(1.0, 3.5) == pytest.approx(
            fresnel_interface_transmission(3.5, 1.0)
        )

    def test_rejects_nonpositive_indices(self):
        with pytest.raises(ValueError):
            fresnel_interface_transmission(0.0, 1.0)
