"""Multi-chip interconnect substrate.

The paper's system-level promise is an "entirely optical through-chip bus that
could service hundreds of thinned stacked dies", supporting broadcast, optical
clock distribution and both vertical and horizontal buses.  This subpackage
provides the system-level pieces needed to exercise that promise: die-stack
topologies, packets, a time-slotted vertical optical bus with arbitration, a
broadcast primitive and a simple router for combined vertical/horizontal
(intra-chip) traffic.
"""

from repro.noc.packet import Packet
from repro.noc.topology import NodeAddress, StackTopology
from repro.noc.arbitration import RoundRobinArbiter, TdmaSchedule
from repro.noc.bus import BusStatistics, OpticalBus, PacketOutcome
from repro.noc.broadcast import BroadcastResult, broadcast
from repro.noc.router import OpticalRouter, Route

__all__ = [
    "Packet",
    "NodeAddress",
    "StackTopology",
    "RoundRobinArbiter",
    "TdmaSchedule",
    "OpticalBus",
    "BusStatistics",
    "PacketOutcome",
    "broadcast",
    "BroadcastResult",
    "OpticalRouter",
    "Route",
]
