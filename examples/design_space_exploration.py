"""Design-space exploration: choosing (N, C) for a given SPAD (paper Figure 4).

Run with ``python examples/design_space_exploration.py [dead_time_ns]``.

Given the dead time (detection cycle) of the SPAD you have, the script walks
the paper's (N, C) design space, prints the throughput/detection-cycle
heatmaps of Figure 4, and picks the highest-throughput TDC design whose range
matches your SPAD, together with the PPM parameters and calibration policy it
implies.  The chosen operating point is then validated by a batched
Monte-Carlo symbol-error run over the vectorised link engine.
"""

import sys

import numpy as np

from repro.analysis.plotting import ascii_heatmap
from repro.analysis.units import NS, PS, format_si
from repro.core.calibration import CalibrationPolicy
from repro.core.config import LinkConfig
from repro.core.design_space import DesignSpace, figure4_grid
from repro.simulation.montecarlo import MonteCarloRunner, link_symbol_error_trial


def main(dead_time_ns: float = 32.0) -> None:
    dead_time = dead_time_ns * NS
    element_delay = 54 * PS  # the FPGA proof-of-concept element delay

    print(f"=== (N, C) design space for a SPAD with a {dead_time_ns:.0f} ns detection cycle ===")
    n_values, c_values, tp, dc = figure4_grid(element_delay=element_delay)
    print("\nlog10 throughput [bit/s] (Figure 4 shading):")
    print(ascii_heatmap(np.log10(tp), row_labels=[str(n) for n in n_values],
                        col_labels=[str(c) for c in c_values]))
    print("\nlog10 detection cycle [s] (Figure 4 contours):")
    print(ascii_heatmap(np.log10(dc), row_labels=[str(n) for n in n_values],
                        col_labels=[str(c) for c in c_values]))

    space = DesignSpace(element_delay=element_delay)
    best = space.best_for_dead_time(dead_time)
    design = best.design
    print("\nselected design:")
    print(f"  N (fine elements)   : {design.fine_elements}")
    print(f"  C (coarse bits)     : {design.coarse_bits}")
    print(f"  element delay delta : {format_si(design.element_delay, 's')}")
    print(f"  measurement window  : {format_si(design.measurement_window, 's')}")
    print(f"  detection cycle DC  : {format_si(design.detection_cycle, 's')}")
    print(f"  bits per conversion : {design.bits_per_symbol:.2f}")
    print(f"  throughput TP       : {format_si(design.throughput, 'bit/s')}")

    print("\nPareto frontier (throughput vs. tolerated detection cycle):")
    for point in space.pareto_front():
        print(f"  N={point.design.fine_elements:5d}  C={point.design.coarse_bits}  "
              f"DC={format_si(point.detection_cycle, 's'):>10}  "
              f"TP={format_si(point.throughput, 'bit/s'):>12}")

    policy = CalibrationPolicy(design=design)
    print("\ncalibration policy (no dynamic PVT compensation, per the paper):")
    print(f"  tolerated temperature excursion : {policy.tolerated_temperature_excursion():.1f} degC")
    print(f"  recalibration interval          : {policy.recalibration_interval():.1f} s "
          f"at {policy.temperature_drift_rate} degC/s drift")
    print(f"  throughput overhead             : {policy.throughput_overhead() * 100:.3f} %")

    # Validate the operating point end to end: a batched Monte-Carlo where
    # each "trial" is one PPM symbol pushed through the batch link backend
    # (selected by name via the registry), chunked by run_batch.
    config = LinkConfig(ppm_bits=4, spad_dead_time=dead_time, mean_detected_photons=20.0)

    trials = 20_000
    outcome = MonteCarloRunner(seed=42, label="design-validation").run_batch(
        link_symbol_error_trial(config, backend="batch"), trials=trials, chunk_size=8192
    )
    print(f"\nMonte-Carlo validation ({trials:,} symbols, batched link engine):")
    print(f"  symbol error rate   : {outcome.mean:.2e} ± {outcome.standard_error():.1e}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 32.0)
